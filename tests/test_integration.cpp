// Cross-module integration tests: the host butterfly numerics vs the IPU
// simulator's graph execution, and small end-to-end trainings per method.
#include <gtest/gtest.h>

#include "core/butterfly.h"
#include "data/synthetic.h"
#include "ipusim/codelet.h"
#include "ipusim/matmul.h"
#include "ipusim/session.h"
#include "linalg/gemm.h"
#include "nn/trainer.h"
#include "util/bitops.h"

namespace repro {
namespace {

// Executes a butterfly forward pass *on the IPU simulator* (feature-major
// layout, one compute set per factor, real vertex arithmetic) and checks it
// against the host core::Butterfly. This ties the lowering used for the
// timing experiments to the numerics used for the accuracy experiments.
TEST(Integration, IpuButterflyGraphMatchesHostButterfly) {
  const std::size_t n = 64, batch = 8;
  Rng rng(5);
  core::Butterfly bf(n, core::ButterflyParam::kDense2x2,
                     /*with_permutation=*/false, rng);

  ipu::Session session(ipu::Gc200());
  ipu::Graph& g = session.graph();
  ipu::Tensor x = g.addVariable("x", n, batch);
  g.mapLinearly(x, batch);
  ipu::Program seq = ipu::Program::Sequence({});
  std::vector<ipu::Tensor> weights;
  for (unsigned f = 0; f < Log2(n); ++f) {
    const std::size_t stride = std::size_t{1} << f;
    ipu::Tensor w = g.addVariable("w" + std::to_string(f), n / 2, 4);
    g.mapLinearly(w, 4);
    weights.push_back(w);
    ipu::ComputeSetId cs = g.addComputeSet("bf" + std::to_string(f));
    std::size_t p = 0;
    for (std::size_t base = 0; base < n; base += 2 * stride) {
      for (std::size_t i = 0; i < stride; ++i, ++p) {
        ipu::VertexId v =
            g.addVertex(cs, ipu::codelets::kButterfly2x2, p % 4);
        g.connect(v, "x_top", x.rowRange(base + i, 1));
        g.connect(v, "x_bot", x.rowRange(base + stride + i, 1));
        g.connect(v, "y_top", x.rowRange(base + i, 1), true);
        g.connect(v, "y_bot", x.rowRange(base + stride + i, 1), true);
        g.connect(v, "w", weights[f].row(p));
        g.setInitialValue(v, "batch", static_cast<double>(batch));
      }
    }
    seq.add(ipu::Program::Execute(cs));
  }
  Status st = session.compile(std::move(seq));
  ASSERT_TRUE(st.ok()) << st.message();

  // Upload weights in the vertex's (a, b, c, d) per-pair layout.
  for (unsigned f = 0; f < Log2(n); ++f) {
    std::vector<float> wf(4 * (n / 2));
    for (std::size_t p = 0; p < n / 2; ++p) {
      // core::Butterfly dense params are stored factor-major, 4 per pair.
      const float* src = bf.params().data() + f * 2 * n + 4 * p;
      std::copy(src, src + 4, wf.data() + 4 * p);
    }
    session.writeTensor(weights[f], wf);
  }
  // Upload activations feature-major: x_dev[row i] = feature i over batch.
  Matrix xin = Matrix::RandomNormal(batch, n, rng);
  std::vector<float> xdev(n * batch);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < batch; ++b) xdev[i * batch + b] = xin(b, i);
  }
  session.writeTensor(x, xdev);
  session.run();
  std::vector<float> ydev(n * batch);
  session.readTensor(x, ydev);

  Matrix want(batch, n);
  bf.Forward(xin, want);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < batch; ++b) {
      EXPECT_NEAR(ydev[i * batch + b], want(b, i), 1e-4)
          << "feature " << i << " sample " << b;
    }
  }
}

// The SHL models should all beat chance (10%) by a wide margin on the
// synthetic task after a short training run, and the rank-1 bottleneck
// should be clearly the worst -- the qualitative core of Table 4.
TEST(Integration, ShortShlTrainingBeatsChance) {
  data::SyntheticConfig cfg;
  cfg.num_samples = 1500;
  data::Dataset train = data::SyntheticCifar10(cfg);
  cfg.sample_seed = 77;  // same world, fresh samples
  cfg.num_samples = 500;
  data::Dataset test = data::SyntheticCifar10(cfg);
  data::StandardizeTogether(train, {&test});

  nn::TrainConfig tcfg;
  tcfg.epochs = 3;
  tcfg.lr = 0.01;  // faster than the paper's 1e-3; this is a smoke test

  auto train_method = [&](core::Method m) {
    Rng rng(42);
    core::ShlShape shape;
    nn::Sequential model = nn::BuildShl(m, shape, rng);
    return nn::Train(model, train, test, tcfg).test_accuracy;
  };
  const double butterfly = train_method(core::Method::kButterfly);
  const double lowrank = train_method(core::Method::kLowRank);
  EXPECT_GT(butterfly, 25.0);
  EXPECT_GT(butterfly, lowrank);
}

// Two independently seeded runs differ (weight init), mirroring the paper's
// note on run-to-run accuracy variation, but both remain sane.
TEST(Integration, SeedSensitivityIsBounded) {
  data::SyntheticConfig cfg;
  cfg.num_samples = 600;
  data::Dataset train = data::SyntheticCifar10(cfg);
  cfg.sample_seed = 78;
  data::Dataset test = data::SyntheticCifar10(cfg);
  data::StandardizeTogether(train, {&test});
  nn::TrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.lr = 0.01;
  auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    core::ShlShape shape;
    nn::Sequential model = nn::BuildShl(core::Method::kFastfood, shape, rng);
    return nn::Train(model, train, test, tcfg).test_accuracy;
  };
  const double a = run(1), b = run(2);
  EXPECT_GT(a, 10.0);
  EXPECT_GT(b, 10.0);
  EXPECT_LT(std::abs(a - b), 30.0);
}

// poplin matmul through the full simulator stack matches the host GEMM the
// NN trainer uses -- accuracy results are device-independent up to float
// association order (the paper's <1.5% observation; here exact shapes).
TEST(Integration, PoplinMatchesHostGemmOnTrainingShapes) {
  ipu::Session session(ipu::Gc200());
  auto plan =
      ipu::BuildMatMul(session.graph(), 50, 1024, 10, ipu::MatMulImpl::kPoplin);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(session.compile(plan.value().prog).ok());
  Rng rng(9);
  Matrix a = Matrix::RandomNormal(50, 1024, rng);
  Matrix b = Matrix::RandomNormal(1024, 10, rng);
  Matrix c = ipu::RunMatMul(plan.value(), session, a, b);
  EXPECT_TRUE(AllClose(c, MatMul(a, b), 1e-3, 1e-3));
}

}  // namespace
}  // namespace repro
