// Tests for the serving subsystem (src/serve): ingress queue semantics,
// micro-batcher policy, metrics arithmetic, device-vs-host numerics parity
// for all three deployed methods, replica sharing, the butterfly > dense
// capacity ordering, the determinism contract, and backpressure.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/device_time.h"
#include "core/method.h"
#include "ipusim/arch.h"
#include "linalg/matrix.h"
#include "nn/export.h"
#include "nn/model.h"
#include "serve/batcher.h"
#include "serve/metrics.h"
#include "serve/model_plan.h"
#include "serve/replica_pool.h"
#include "serve/request_queue.h"
#include "serve/server.h"
#include "util/rng.h"

namespace repro::serve {
namespace {

using core::Method;

// ---------------------------------------------------------------------------
// BoundedMpmcQueue

TEST(RequestQueueTest, TryPushShedsAtCapacity) {
  BoundedMpmcQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: admission control refuses
  EXPECT_EQ(q.size(), 2u);
  int v = 0;
  EXPECT_TRUE(q.TryPop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.TryPush(3));  // slot freed
}

TEST(RequestQueueTest, CloseDrainsThenFails) {
  BoundedMpmcQueue<int> q(4);
  ASSERT_TRUE(q.TryPush(7));
  ASSERT_TRUE(q.TryPush(8));
  q.Close();
  q.Close();  // idempotent
  EXPECT_FALSE(q.TryPush(9));
  int v = 0;
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 8);
  EXPECT_FALSE(q.Pop(v));  // closed and drained
  EXPECT_FALSE(q.TryPop(v));
}

TEST(RequestQueueTest, CloseWakesProducerBlockedInPush) {
  BoundedMpmcQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1));  // full: the next Push must block
  std::atomic<bool> pushed{false};
  std::atomic<bool> result{true};
  std::thread producer([&] {
    result = q.Push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still parked in the full-queue wait
  q.Close();
  producer.join();
  EXPECT_FALSE(result.load());  // closed while blocked -> push refused
  int v = 0;
  EXPECT_TRUE(q.Pop(v));  // the pre-close item still drains
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(q.Pop(v));
}

TEST(RequestQueueTest, CloseWakesConsumerBlockedInPop) {
  BoundedMpmcQueue<int> q(4);
  std::atomic<bool> popped{false};
  std::atomic<bool> result{true};
  std::thread consumer([&] {
    int v = 0;
    result = q.Pop(v);
    popped = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped.load());  // still parked in the empty-queue wait
  q.Close();
  consumer.join();
  EXPECT_FALSE(result.load());  // closed and empty -> pop fails
}

TEST(RequestQueueTest, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedMpmcQueue<int> q(16);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int v;
      while (q.Pop(v)) {
        sum.fetch_add(v);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));  // backpressure, not shed
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ---------------------------------------------------------------------------
// MicroBatcher

TEST(MicroBatcherTest, FullBatchIsReadyImmediately) {
  MicroBatcher b(BatchPolicy{.max_batch = 4, .max_delay_s = 1.0});
  for (std::uint64_t i = 0; i < 4; ++i) b.Add(Request{i, 0.0, 0});
  EXPECT_TRUE(b.Ready(0.0));  // full: no need to wait out the delay
  std::vector<Request> batch = b.Pop();
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[3].id, 3u);
  EXPECT_TRUE(b.empty());
}

TEST(MicroBatcherTest, PartialBatchWaitsOutTheDeadline) {
  MicroBatcher b(BatchPolicy{.max_batch = 8, .max_delay_s = 100e-6});
  b.Add(Request{0, 1.0, 0});
  EXPECT_FALSE(b.Ready(1.0));
  EXPECT_FALSE(b.Ready(1.0 + 99e-6));
  EXPECT_DOUBLE_EQ(b.Deadline(), 1.0 + 100e-6);
  EXPECT_TRUE(b.Ready(1.0 + 100e-6));
  EXPECT_EQ(b.Pop().size(), 1u);
  EXPECT_TRUE(std::isinf(b.Deadline()));  // nothing pending
}

TEST(MicroBatcherTest, PopTakesOldestUpToMaxBatch) {
  MicroBatcher b(BatchPolicy{.max_batch = 3, .max_delay_s = 1.0});
  for (std::uint64_t i = 0; i < 5; ++i) b.Add(Request{i, 0.1 * double(i), 0});
  std::vector<Request> first = b.Pop();
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].id, 0u);
  EXPECT_EQ(first[2].id, 2u);
  EXPECT_EQ(b.pending(), 2u);
  // The remaining partial batch's deadline is anchored on request 3.
  EXPECT_DOUBLE_EQ(b.Deadline(), 0.3 + 1.0);
}

// ---------------------------------------------------------------------------
// ServeMetrics

TEST(ServeMetricsTest, NearestRankPercentiles) {
  ServeMetrics m(4);
  // 10 latencies 1ms..10ms in shuffled completion order.
  const double ms[] = {5, 1, 9, 2, 10, 3, 8, 4, 7, 6};
  for (double v : ms) m.RecordCompletion(v * 1e-3, 0.0);
  m.Finalize(10e-3);
  EXPECT_DOUBLE_EQ(m.LatencyPercentile(50.0), 5e-3);   // ceil(0.5*10) = 5th
  EXPECT_DOUBLE_EQ(m.LatencyPercentile(95.0), 10e-3);  // ceil(0.95*10) = 10th
  EXPECT_DOUBLE_EQ(m.LatencyPercentile(99.0), 10e-3);
  EXPECT_DOUBLE_EQ(m.maxLatency(), 10e-3);
  EXPECT_NEAR(m.meanLatency(), 5.5e-3, 1e-12);
  EXPECT_DOUBLE_EQ(m.qps(), 10 / 10e-3);
}

TEST(ServeMetricsTest, OccupancyHistogramAndPadding) {
  ServeMetrics m(4);
  m.RecordBatch(4);
  m.RecordBatch(4);
  m.RecordBatch(1);
  EXPECT_EQ(m.batches(), 3u);
  ASSERT_EQ(m.occupancyHist().size(), 5u);  // slots 0..max_batch
  EXPECT_EQ(m.occupancyHist()[4], 2u);
  EXPECT_EQ(m.occupancyHist()[1], 1u);
  EXPECT_DOUBLE_EQ(m.meanOccupancy(), 3.0);
  // 3 batches * 4 slots = 12 executed, 9 occupied -> 25% padding.
  EXPECT_DOUBLE_EQ(m.paddingFraction(), 0.25);
}

TEST(ServeMetricsTest, ToJsonCarriesTheContract) {
  ServeMetrics m(2);
  m.RecordAdmitted();
  m.RecordAdmitted();
  m.RecordRejected();
  m.RecordBatch(2);
  m.RecordCompletion(1e-3, 2e-4);
  m.RecordCompletion(2e-3, 1e-4);
  m.Finalize(4e-3);
  const std::string json = m.ToJson();
  EXPECT_NE(json.find("\"admitted\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rejected\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"completed\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_p99_us\": 2000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"occupancy_hist\": [0, 0, 1]"), std::string::npos)
      << json;
}

TEST(ServeMetricsTest, PercentileEdgeCases) {
  ServeMetrics one(4);
  one.RecordCompletion(3e-3, 0.0);
  // A single sample is every percentile: nearest-rank clamps to rank 1.
  EXPECT_DOUBLE_EQ(one.LatencyPercentile(0.001), 3e-3);
  EXPECT_DOUBLE_EQ(one.LatencyPercentile(50.0), 3e-3);
  EXPECT_DOUBLE_EQ(one.LatencyPercentile(100.0), 3e-3);

  ServeMetrics many(4);
  for (int i = 1; i <= 9; ++i) many.RecordCompletion(i * 1e-3, 0.0);
  EXPECT_DOUBLE_EQ(many.LatencyPercentile(100.0), 9e-3);   // p100 = max
  EXPECT_DOUBLE_EQ(many.LatencyPercentile(0.001), 1e-3);   // p->0+ = min
  EXPECT_DOUBLE_EQ(many.LatencyPercentile(100.0), many.maxLatency());
}

TEST(ServeMetricsTest, ToJsonPercentilesMatchPerCallPathByteForByte) {
  // Regression for the sort-once ToJson: its inlined nearest-rank math must
  // produce byte-identical percentile fields to LatencyPercentile on a
  // large shuffled latency set.
  ServeMetrics m(8);
  Rng rng(99);
  for (int i = 0; i < 5000; ++i)
    m.RecordCompletion(rng.Uniform(1e-5, 5e-2), rng.Uniform(0.0, 1e-3));
  m.RecordBatch(8);
  m.Finalize(1.0);
  const std::string json = m.ToJson();
  auto pct_field = [&](const char* key, double p) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"%s\": %.17g", key,
                  m.LatencyPercentile(p) * 1e6);
    EXPECT_NE(json.find(buf), std::string::npos) << buf << " not in " << json;
  };
  pct_field("latency_p50_us", 50.0);
  pct_field("latency_p95_us", 95.0);
  pct_field("latency_p99_us", 99.0);
  // And the whole serialization is stable call to call.
  EXPECT_EQ(json, m.ToJson());
}

TEST(ServeMetricsTest, OutOfRangeBatchIsCountedNotFatal) {
  ServeMetrics m(4);
  EXPECT_FALSE(m.RecordBatch(0));   // empty dispatch: a server bug
  EXPECT_FALSE(m.RecordBatch(5));   // above the compiled shape
  EXPECT_TRUE(m.RecordBatch(2));
  EXPECT_EQ(m.invariantViolations(), 2u);
  EXPECT_EQ(m.batches(), 1u);  // rejected batches leave no occupancy trace
  EXPECT_DOUBLE_EQ(m.meanOccupancy(), 2.0);
  EXPECT_NE(m.ToJson().find("\"invariant_violations\": 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ModelPlan numerics: device logits must match the host forward pass.

core::ShlShape SmallShape(std::size_t n) {
  core::ShlShape shape;
  shape.input = n;
  shape.hidden = n;
  shape.classes = 10;
  shape.pixelfly = core::PixelflyConfig{
      .n = n, .block_size = 16, .butterfly_size = 4, .low_rank = 16};
  return shape;
}

// Builds + exports an (untrained but randomly initialised) SHL model and
// checks RunBatch against the host Forward on the same inputs.
void CheckParity(Method method, std::size_t rows) {
  const std::size_t n = 64;
  const std::size_t max_batch = 8;
  Rng rng(41);
  nn::Sequential model = nn::BuildShl(method, SmallShape(n), rng);
  nn::ForwardSpec spec = nn::ExportForward(model);

  auto plan = ModelPlan::Build(spec, ipu::Gc200(),
                               PlanOptions{.max_batch = max_batch});
  ASSERT_TRUE(plan.ok()) << plan.status().message();

  Matrix x(rows, n);
  Rng data_rng(7);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < n; ++j)
      x(i, j) = float(data_rng.Uniform(-1.0, 1.0));

  const Matrix& host = model.Forward(x, /*train=*/false);
  std::unique_ptr<ipu::Engine> engine = plan.value()->MakeReplica();
  Matrix device = plan.value()->RunBatch(*engine, x);

  ASSERT_EQ(device.rows(), rows);
  ASSERT_EQ(device.cols(), 10u);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < 10u; ++j) {
      EXPECT_NEAR(device(i, j), host(i, j), 5e-4)
          << MethodName(method) << " logit (" << i << ", " << j << ")";
    }
  }
}

TEST(ModelPlanTest, DenseMatchesHostForward) { CheckParity(Method::kBaseline, 8); }

TEST(ModelPlanTest, ButterflyMatchesHostForward) {
  CheckParity(Method::kButterfly, 8);
}

TEST(ModelPlanTest, PixelflyMatchesHostForward) {
  CheckParity(Method::kPixelfly, 8);
}

TEST(ModelPlanTest, PartialBatchIsZeroPaddedCorrectly) {
  // rows < max_batch exercises the padding path end to end.
  CheckParity(Method::kButterfly, 3);
}

TEST(ModelPlanTest, TooSmallTileSliceIsInvalid) {
  Rng rng(1);
  nn::Sequential model = nn::BuildShl(Method::kBaseline, SmallShape(64), rng);
  nn::ForwardSpec spec = nn::ExportForward(model);
  auto plan = ModelPlan::Build(
      spec, ipu::Gc200(),
      PlanOptions{.max_batch = 8, .execute = false, .num_tiles = 1});
  EXPECT_FALSE(plan.ok());
}

// ---------------------------------------------------------------------------
// Replication

TEST(ReplicaPoolTest, ReplicasShareExecutableButNotStorage) {
  Rng rng(3);
  nn::Sequential model = nn::BuildShl(Method::kButterfly, SmallShape(64), rng);
  nn::ForwardSpec spec = nn::ExportForward(model);
  auto plan =
      ModelPlan::Build(spec, ipu::Gc200(), PlanOptions{.max_batch = 4});
  ASSERT_TRUE(plan.ok()) << plan.status().message();

  ReplicaPool pool(*plan.value(), /*replicas=*/3);
  ASSERT_EQ(pool.size(), 3u);
  // One compiled executable behind every engine.
  EXPECT_EQ(&pool.engine(0).executable(), &pool.engine(1).executable());
  EXPECT_EQ(&pool.engine(0).executable(), &pool.engine(2).executable());

  Matrix x(4, 64);
  Rng data_rng(9);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.cols(); ++j)
      x(i, j) = float(data_rng.Normal());
  Matrix a = plan.value()->RunBatch(pool.engine(0), x);
  Matrix b = plan.value()->RunBatch(pool.engine(2), x);
  // Same weights, same inputs, independent storage: bitwise-equal outputs.
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_EQ(a(i, j), b(i, j)) << "(" << i << ", " << j << ")";
}

TEST(ReplicaPoolTest, ButterflyFitsMoreReplicasThanDenseAtN1024) {
  // The acceptance claim of the serving subsystem: at n = 1024, the
  // O(n log n) butterfly weights fit strictly more timing-plan replicas per
  // simulated GC200 than the O(n^2) dense baseline.
  core::ShlShape shape;  // defaults: 1024 -> 1024 -> 10
  const PlanOptions probe{.max_batch = 32, .execute = false};

  Rng rng_d(11);
  nn::Sequential dense = nn::BuildShl(Method::kBaseline, shape, rng_d);
  nn::ForwardSpec dense_spec = nn::ExportForward(dense);
  const std::size_t dense_k =
      MaxReplicasPerIpu(dense_spec, ipu::Gc200(), probe, /*cap=*/256);

  Rng rng_b(11);
  nn::Sequential bfly = nn::BuildShl(Method::kButterfly, shape, rng_b);
  nn::ForwardSpec bfly_spec = nn::ExportForward(bfly);
  const std::size_t bfly_k =
      MaxReplicasPerIpu(bfly_spec, ipu::Gc200(), probe, /*cap=*/256);

  EXPECT_GE(dense_k, 1u);
  EXPECT_GT(bfly_k, dense_k)
      << "butterfly should fit strictly more replicas (dense " << dense_k
      << ", butterfly " << bfly_k << ")";
}

// ---------------------------------------------------------------------------
// Server: determinism + backpressure contracts

struct ServeFixture {
  std::unique_ptr<ModelPlan> plan;
  Matrix inputs;

  explicit ServeFixture(std::size_t max_batch = 4) {
    Rng rng(5);
    nn::Sequential model =
        nn::BuildShl(Method::kButterfly, SmallShape(64), rng);
    nn::ForwardSpec spec = nn::ExportForward(model);
    auto built = ModelPlan::Build(spec, ipu::Gc200(),
                                  PlanOptions{.max_batch = max_batch});
    REPRO_REQUIRE(built.ok(), "fixture plan: %s", built.status().message().c_str());
    plan = built.take();
    inputs = Matrix(16, 64);
    Rng data_rng(13);
    for (std::size_t i = 0; i < inputs.rows(); ++i)
      for (std::size_t j = 0; j < inputs.cols(); ++j)
        inputs(i, j) = float(data_rng.Uniform(-1.0, 1.0));
  }
};

TEST(ServerTest, MetricsAndLogitsAreHostThreadInvariant) {
  ServeFixture fx;
  const OpenLoopLoad load{.qps = 2.0 / fx.plan->batchSeconds(),
                          .requests = 200,
                          .seed = 42};

  auto run = [&](std::size_t host_threads) {
    ReplicaPool pool(*fx.plan, /*replicas=*/2);
    ServerConfig cfg;
    cfg.batch = BatchPolicy{.max_batch = 4, .max_delay_s = 100e-6};
    cfg.queue_capacity = 32;
    cfg.host_threads = host_threads;
    Server server(pool, cfg);
    return server.RunOpenLoop(load, &fx.inputs);
  };

  ServeResult one = run(1);
  ServeResult four = run(4);
  // Determinism contract: bitwise-identical metrics JSON and logits.
  EXPECT_EQ(one.metrics.ToJson(), four.metrics.ToJson());
  ASSERT_EQ(one.logits.rows(), four.logits.rows());
  for (std::size_t i = 0; i < one.logits.rows(); ++i)
    for (std::size_t j = 0; j < one.logits.cols(); ++j)
      EXPECT_EQ(one.logits(i, j), four.logits(i, j));
  EXPECT_GT(one.metrics.completed(), 0u);
}

TEST(ServerTest, OpenLoopOverloadShedsAndAccounts) {
  ServeFixture fx;
  ReplicaPool pool(*fx.plan, /*replicas=*/1);
  ServerConfig cfg;
  cfg.batch = BatchPolicy{.max_batch = 4, .max_delay_s = 50e-6};
  cfg.queue_capacity = 4;  // tiny bound: overload must shed
  Server server(pool, cfg);
  // Offer ~20x what one replica can serve.
  const OpenLoopLoad load{.qps = 80.0 / fx.plan->batchSeconds(),
                          .requests = 400,
                          .seed = 9};
  ServeResult r = server.RunOpenLoop(load);
  EXPECT_GT(r.metrics.rejected(), 0u);
  EXPECT_EQ(r.metrics.admitted() + r.metrics.rejected(), 400u);
  EXPECT_EQ(r.metrics.completed(), r.metrics.admitted());
  EXPECT_EQ(r.logits.rows(), 0u);  // no inputs -> timing only
}

TEST(ServerTest, ClosedLoopNeverRejects) {
  ServeFixture fx;
  ReplicaPool pool(*fx.plan, /*replicas=*/2);
  ServerConfig cfg;
  cfg.batch = BatchPolicy{.max_batch = 4, .max_delay_s = 50e-6};
  cfg.queue_capacity = 8;
  Server server(pool, cfg);
  const ClosedLoopLoad load{.clients = 8, .requests = 100, .think_s = 0.0};
  ServeResult r = server.RunClosedLoop(load, &fx.inputs);
  EXPECT_EQ(r.metrics.rejected(), 0u);  // backpressure contract
  EXPECT_EQ(r.metrics.admitted(), 100u);
  EXPECT_EQ(r.metrics.completed(), 100u);
  EXPECT_GT(r.metrics.meanOccupancy(), 1.0);
  // Every request's logits were replayed.
  ASSERT_EQ(r.logits.rows(), 100u);
}

// ---------------------------------------------------------------------------
// Edge cases sharpened by the streaming work

TEST(ServeMetricsTest, ZeroBatchesYieldZeroNotNan) {
  ServeMetrics m(8);
  EXPECT_EQ(m.batches(), 0u);
  EXPECT_DOUBLE_EQ(m.meanOccupancy(), 0.0);
  EXPECT_DOUBLE_EQ(m.paddingFraction(), 0.0);
  EXPECT_DOUBLE_EQ(m.overlappedHostSeconds(), 0.0);
}

TEST(MicroBatcherTest, EmptyBatcherDeadlineIsPositiveInfinity) {
  MicroBatcher b(BatchPolicy{.max_batch = 4, .max_delay_s = 100e-6});
  EXPECT_TRUE(std::isinf(b.Deadline()));
  EXPECT_GT(b.Deadline(), 0.0);
  // Ready() compares against that +infinity: never ready while empty.
  EXPECT_FALSE(b.Ready(0.0));
  EXPECT_FALSE(b.Ready(1e30));
}

TEST(MicroBatcherTest, ReadyIsBitExactAtTheDeadlineDouble) {
  // An awkward (arrival + delay) sum: the scheduler wakes at exactly
  // Deadline()'s double, so Ready must flip at that bit pattern, not an
  // epsilon later.
  MicroBatcher b(BatchPolicy{.max_batch = 8, .max_delay_s = 1e-4});
  b.Add(Request{0, 0.1, 0});
  const double deadline = b.Deadline();
  EXPECT_FALSE(b.Ready(std::nextafter(deadline, 0.0)));
  EXPECT_TRUE(b.Ready(deadline));
  EXPECT_TRUE(b.Ready(std::nextafter(deadline, 1.0)));
}

// ---------------------------------------------------------------------------
// Streaming ingress vs the synchronous copy baseline

TEST(ServerTest, StreamingPlanOutservesCopyPlanAndRecordsOverlap) {
  Rng rng(5);
  nn::Sequential model = nn::BuildShl(Method::kButterfly, SmallShape(64), rng);
  nn::ForwardSpec spec = nn::ExportForward(model);

  auto run = [&](bool streaming) {
    auto plan = ModelPlan::Build(spec, ipu::Gc200(),
                                 PlanOptions{.max_batch = 4,
                                             .execute = false,
                                             .streaming = streaming});
    REPRO_REQUIRE(plan.ok(), "plan: %s", plan.status().message().c_str());
    ReplicaPool pool(*plan.value(), /*replicas=*/2);
    ServerConfig cfg;
    cfg.batch = BatchPolicy{.max_batch = 4, .max_delay_s = 50e-6};
    // Two batches worth of clients per replica so the depth-2 FIFO fills.
    cfg.queue_capacity = 16;
    Server server(pool, cfg);
    return server.RunClosedLoop(
        ClosedLoopLoad{.clients = 16, .requests = 240, .think_s = 0.0});
  };

  const ServeResult stream = run(true);
  const ServeResult copy = run(false);
  EXPECT_GT(stream.metrics.overlappedHostSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(copy.metrics.overlappedHostSeconds(), 0.0);
  EXPECT_GT(stream.metrics.qps(), copy.metrics.qps());
}

TEST(ModelPlanTest, StreamingAndCopyPlansAgreeOnLogitsBitwise) {
  Rng rng(5);
  nn::Sequential model = nn::BuildShl(Method::kButterfly, SmallShape(64), rng);
  nn::ForwardSpec spec = nn::ExportForward(model);
  Matrix x(4, 64);
  Rng data_rng(13);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.cols(); ++j)
      x(i, j) = float(data_rng.Uniform(-1.0, 1.0));

  auto logits = [&](bool streaming) {
    auto plan = ModelPlan::Build(
        spec, ipu::Gc200(),
        PlanOptions{.max_batch = 4, .streaming = streaming});
    REPRO_REQUIRE(plan.ok(), "plan: %s", plan.status().message().c_str());
    std::unique_ptr<ipu::Engine> engine = plan.value()->MakeReplica();
    return plan.value()->RunBatch(*engine, x);
  };

  const Matrix s = logits(true);
  const Matrix c = logits(false);
  ASSERT_EQ(s.rows(), c.rows());
  ASSERT_EQ(s.cols(), c.cols());
  for (std::size_t i = 0; i < s.rows(); ++i)
    for (std::size_t j = 0; j < s.cols(); ++j)
      EXPECT_EQ(s(i, j), c(i, j)) << "(" << i << ", " << j << ")";
}

TEST(ModelPlanTest, StreamProfileDecomposesBatchSeconds) {
  Rng rng(5);
  nn::Sequential model = nn::BuildShl(Method::kButterfly, SmallShape(64), rng);
  nn::ForwardSpec spec = nn::ExportForward(model);
  auto plan = ModelPlan::Build(spec, ipu::Gc200(),
                               PlanOptions{.max_batch = 4, .execute = false});
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  const ModelPlan::StreamProfile& p = plan.value()->streamProfile();
  EXPECT_TRUE(p.enabled);
  EXPECT_GT(p.in_s, 0.0);
  EXPECT_GT(p.compute_s, 0.0);
  EXPECT_GT(p.out_s, 0.0);
  // Cold end-to-end time is the un-overlapped sum of the three phases.
  EXPECT_NEAR(p.in_s + p.compute_s + p.out_s, plan.value()->batchSeconds(),
              1e-15);

  auto copy = ModelPlan::Build(spec, ipu::Gc200(),
                               PlanOptions{.max_batch = 4,
                                           .execute = false,
                                           .streaming = false});
  ASSERT_TRUE(copy.ok());
  const ModelPlan::StreamProfile& q = copy.value()->streamProfile();
  EXPECT_FALSE(q.enabled);
  EXPECT_DOUBLE_EQ(q.in_s, 0.0);
  EXPECT_DOUBLE_EQ(q.out_s, 0.0);
  EXPECT_DOUBLE_EQ(q.compute_s, copy.value()->batchSeconds());
}

}  // namespace
}  // namespace repro::serve
