#include <gtest/gtest.h>

#include <cmath>

#include "core/block_butterfly.h"
#include "core/pixelfly.h"
#include "linalg/gemm.h"
#include "util/bitops.h"

namespace repro::core {
namespace {

class BlockButterflyConfigs
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BlockButterflyConfigs, ForwardMatchesDense) {
  auto [n, b, s] = GetParam();
  Rng rng(n + b);
  BlockButterfly bf(n, b, s, rng);
  Matrix dense = bf.ToDense();
  Matrix x = Matrix::RandomNormal(3, n, rng);
  Matrix y(3, n);
  bf.Forward(x, y);
  Matrix ref = MatMul(x, dense.Transposed());
  EXPECT_TRUE(AllClose(y, ref, 1e-3, 1e-3));
}

TEST_P(BlockButterflyConfigs, GradCheck) {
  auto [n, b, s] = GetParam();
  if (n > 32) GTEST_SKIP() << "numeric gradcheck only at small sizes";
  Rng rng(n + b + 1);
  BlockButterfly bf(n, b, s, rng);
  const std::size_t batch = 2;
  Matrix x = Matrix::RandomNormal(batch, n, rng);
  Matrix g = Matrix::RandomNormal(batch, n, rng);
  Matrix y(batch, n);
  BlockButterfly::Workspace ws;
  bf.Forward(x, y, &ws);
  bf.zeroGrad();
  Matrix dx(batch, n);
  bf.Backward(ws, g, dx);

  auto loss = [&]() {
    Matrix yy(batch, n);
    bf.Forward(x, yy);
    double l = 0.0;
    for (std::size_t i = 0; i < yy.size(); ++i) {
      l += static_cast<double>(yy.data()[i]) * g.data()[i];
    }
    return l;
  };
  const float eps = 1e-3f;
  auto params = bf.params();
  auto grads = bf.grads();
  for (std::size_t i = 0; i < params.size(); i += 9) {
    const float orig = params[i];
    params[i] = orig + eps;
    const double lp = loss();
    params[i] = orig - eps;
    const double lm = loss();
    params[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grads[i], numeric, 2e-2 * std::max(1.0, std::abs(numeric)))
        << "param " << i;
  }
  for (std::size_t i = 0; i < x.size(); i += 5) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double lp = loss();
    x.data()[i] = orig - eps;
    const double lm = loss();
    x.data()[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(dx.data()[i], numeric, 2e-2 * std::max(1.0, std::abs(numeric)))
        << "input " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BlockButterflyConfigs,
    ::testing::Values(std::tuple{8, 2, 4}, std::tuple{16, 4, 4},
                      std::tuple{16, 2, 8}, std::tuple{32, 4, 8},
                      std::tuple{64, 8, 8}, std::tuple{64, 16, 4}));

TEST(BlockButterfly, ParamCount) {
  Rng rng(1);
  BlockButterfly bf(64, 8, 8, rng);
  // log2(8) = 3 factors, 8 block rows, 2 blocks of 8x8 each.
  EXPECT_EQ(bf.paramCount(), 3u * 8 * 2 * 64);
  EXPECT_EQ(bf.numFactors(), 3u);
}

TEST(BlockButterfly, ScalarBlocksReduceToButterflyStructure) {
  // With b = 1 the block butterfly is an (unconstrained 2x2) butterfly over
  // butterfly_size elements per group: each output depends on exactly two
  // inputs per factor.
  Rng rng(2);
  BlockButterfly bf(8, 1, 8, rng);
  Matrix d = bf.ToDense();
  // Product of 3 factors with 2 nonzeros/row can reach all 8 columns.
  int nonzeros = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      if (std::abs(d(i, j)) > 1e-6) ++nonzeros;
    }
  }
  EXPECT_GT(nonzeros, 32);  // dense reach after log2(8) factors
}

TEST(BlockButterfly, NearIdentityAtInitHasBoundedDeviation) {
  Rng rng(3);
  BlockButterfly bf(32, 4, 8, rng);
  Matrix d = bf.ToDense();
  // Init is I + noise per factor: the product stays within a moderate
  // distance of the identity (no exploding entries).
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_LT(std::abs(d.data()[i]), 10.0f);
  }
  double diag_mean = 0.0;
  for (std::size_t i = 0; i < 32; ++i) diag_mean += d(i, i);
  EXPECT_GT(diag_mean / 32.0, 0.3);
}

// The flat-vs-product ablation's core claim: flattening loses expressivity.
// A product of factors can represent a grid-level permutation-like mixing
// whose flat (sum) counterpart with the same pattern cannot.
TEST(BlockButterfly, ProductReachesFurtherThanFlatSum) {
  const std::size_t n = 16, b = 2, s = 8;
  Rng rng(4);
  BlockButterfly prod(n, b, s, rng);
  Matrix dp = prod.ToDense();
  // Product connectivity: output block 0 depends on inputs up to block
  // distance 2^levels - 1; the flat sum only reaches distance 2^(levels-1)
  // (one hop). Check a far block is reachable in the product...
  double far = 0.0;
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t j = 0; j < b; ++j) {
      far += std::abs(dp(i, (3 * b) + j));  // block (0, 3): needs 2 hops
    }
  }
  EXPECT_GT(far, 1e-4);
  // ...while the flat pattern has no (0, 3) block at all (3 = 0^2^k has no
  // solution for a single k).
  auto pattern = FlatButterflyPattern(n, b, s);
  for (const auto& c : pattern) {
    if (c.bi == 0) EXPECT_NE(c.bj, 3u);
  }
}

TEST(BlockButterfly, RejectsBadConfigs) {
  Rng rng(5);
  EXPECT_DEATH(BlockButterfly(10, 3, 2, rng), "divide");
  EXPECT_DEATH(BlockButterfly(16, 4, 3, rng), "power of two");
  EXPECT_DEATH(BlockButterfly(16, 4, 8, rng), "power of two in");
}

TEST(BlockButterfly, ZeroGrad) {
  Rng rng(6);
  BlockButterfly bf(16, 4, 4, rng);
  Matrix x = Matrix::RandomNormal(2, 16, rng);
  Matrix y(2, 16), dx(2, 16);
  BlockButterfly::Workspace ws;
  bf.Forward(x, y, &ws);
  bf.Backward(ws, y, dx);
  double sum = 0.0;
  for (float g : bf.grads()) sum += std::abs(g);
  EXPECT_GT(sum, 0.0);
  bf.zeroGrad();
  for (float g : bf.grads()) EXPECT_EQ(g, 0.0f);
}

}  // namespace
}  // namespace repro::core
