// Failure injection: malformed graphs, inconsistent plans, and bad inputs
// must fail loudly (Status for data-dependent conditions, fatal checks for
// API misuse) -- never silently compute garbage.
#include <gtest/gtest.h>

#include "core/butterfly.h"
#include "core/fft.h"
#include "ipusim/codelet.h"
#include "ipusim/matmul.h"
#include "ipusim/session.h"
#include "linalg/gemm.h"
#include "linalg/spmm.h"

namespace repro {
namespace {

using namespace repro::ipu;

TEST(FailureInjection, SessionRunBeforeCompileDies) {
  Session session(Gc200());
  EXPECT_DEATH(session.run(), "before compile");
}

TEST(FailureInjection, SessionCompileTwiceDies) {
  Session session(Gc200());
  Tensor t = session.graph().addVariable("x", 4);
  session.graph().setTileMapping(t, 0);
  ASSERT_TRUE(session.compile(Program::Sequence({})).ok());
  EXPECT_DEATH({ (void)session.compile(Program::Sequence({})); }, "twice");
}

TEST(FailureInjection, SessionRejectsAbsurdHostThreads) {
  EXPECT_DEATH(Session(Gc200(), SessionOptions{.host_threads = 100000}),
               "host_threads");
}

TEST(FailureInjection, OverlappingVertexOutputsRejectedAtCompile) {
  // Two vertices in one compute set writing the same elements violates the
  // BSP disjointness contract; the compiler must refuse, not race.
  Session session(Gc200());
  Graph& g = session.graph();
  Tensor x = g.addVariable("x", 8);
  g.setTileMapping(x, 0);
  ComputeSetId cs = g.addComputeSet("cs");
  for (int i = 0; i < 2; ++i) {
    VertexId v = g.addVertex(cs, codelets::kRelu, 0);
    g.connect(v, "x", x);
    g.connect(v, "y", x, true);
  }
  Status s = session.compile(Program::Execute(cs));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(s.message().find("overlap"), std::string::npos) << s.message();
}

TEST(FailureInjection, VertexMissingFieldDiesAtExecution) {
  Session session(Gc200());
  Graph& g = session.graph();
  Tensor x = g.addVariable("x", 4);
  g.setTileMapping(x, 0);
  ComputeSetId cs = g.addComputeSet("cs");
  VertexId v = g.addVertex(cs, codelets::kRelu, 0);
  g.connect(v, "x", x);
  // "y" is never connected.
  ASSERT_TRUE(session.compile(Program::Execute(cs)).ok());
  EXPECT_DEATH(session.run(), "not connected");
}

TEST(FailureInjection, GemmVertexShapeMismatchDies) {
  Session session(Gc200());
  Graph& g = session.graph();
  Tensor a = g.addVariable("a", 4);
  Tensor b = g.addVariable("b", 4);
  Tensor c = g.addVariable("c", 4);
  g.setTileMapping(a, 0);
  g.setTileMapping(b, 0);
  g.setTileMapping(c, 0);
  ComputeSetId cs = g.addComputeSet("cs");
  VertexId v = g.addVertex(cs, codelets::kScalarGemm, 0);
  g.connect(v, "a", a);
  g.connect(v, "b", b);
  g.connect(v, "out", c, true);
  g.setInitialValue(v, "m", 4);  // claims 4x4x4 but buffers hold 4 elements
  g.setInitialValue(v, "k", 4);
  g.setInitialValue(v, "n", 4);
  ASSERT_TRUE(session.compile(Program::Execute(cs)).ok());
  EXPECT_DEATH(session.run(), "shape mismatch");
}

TEST(FailureInjection, ConnectEmptyTensorDies) {
  Graph g(Gc200());
  Tensor x = g.addVariable("x", 4);
  g.setTileMapping(x, 0);
  ComputeSetId cs = g.addComputeSet("cs");
  VertexId v = g.addVertex(cs, codelets::kRelu, 0);
  EXPECT_DEATH(g.connect(v, "x", x.slice(0, 0)), "empty tensor");
}

TEST(FailureInjection, VertexOnInvalidTileDies) {
  Graph g(Gc200());
  ComputeSetId cs = g.addComputeSet("cs");
  EXPECT_DEATH(g.addVertex(cs, codelets::kRelu, 1472), "out of range");
}

TEST(FailureInjection, MappingInvalidTileDies) {
  Graph g(Gc200());
  Tensor x = g.addVariable("x", 4);
  EXPECT_DEATH(g.setTileMapping(x, 99999), "out of range");
}

TEST(FailureInjection, WriteTensorWrongSizeDies) {
  Session session(Gc200());
  Tensor x = session.graph().addVariable("x", 4);
  session.graph().setTileMapping(x, 0);
  ASSERT_TRUE(session.compile(Program::Sequence({})).ok());
  std::vector<float> wrong(3);
  EXPECT_DEATH(session.writeTensor(x, wrong), "size mismatch");
}

TEST(FailureInjection, MatmulZeroDimensionDies) {
  Graph g(Gc200());
  EXPECT_DEATH(
      { auto r = BuildMatMul(g, 0, 4, 4, MatMulImpl::kPoplin); (void)r; },
      "empty matmul");
}

TEST(FailureInjection, GemmHostShapeMismatchDies) {
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(3, 4, rng);
  Matrix b = Matrix::RandomNormal(5, 2, rng);  // inner dims disagree
  Matrix c(3, 2);
  EXPECT_DEATH(GemmNaive(a, b, c), "GemmNaive");
}

TEST(FailureInjection, SpmmShapeMismatchDies) {
  Rng rng(2);
  Csr s = RandomCsr(4, 4, 0.5, rng);
  Matrix b = Matrix::RandomNormal(5, 2, rng);
  Matrix c(4, 2);
  EXPECT_DEATH(SpmmCsr(s, b, c), "shape mismatch");
}

TEST(FailureInjection, CircularConvolveSizeMismatchDies) {
  std::vector<float> c(8), x(7), out(8);
  EXPECT_DEATH(core::CircularConvolve(c, x, out), "size mismatch");
}

TEST(FailureInjection, ButterflyStaleWorkspaceDies) {
  Rng rng(3);
  core::Butterfly bf(8, core::ButterflyParam::kDense2x2, false, rng);
  core::Butterfly::Workspace ws;  // never filled by a Forward
  Matrix dy = Matrix::RandomNormal(2, 8, rng);
  Matrix dx(2, 8);
  EXPECT_DEATH(bf.Backward(ws, dy, dx), "stale");
}

TEST(FailureInjection, StatusOrTakeOnErrorDies) {
  StatusOr<int> err(Status::OutOfMemory("boom"));
  EXPECT_FALSE(err.ok());
  EXPECT_DEATH(err.value(), "boom");
}

TEST(FailureInjection, UnknownCodeletLookupDies) {
  EXPECT_DEATH(CodeletRegistry::Get().Lookup("DoesNotExist"),
               "unknown codelet");
}

TEST(FailureInjection, OversubscribedTileReportsFullestTile) {
  IpuArch tiny = Gc200();
  tiny.tile_memory_bytes = 2048;
  Graph g(tiny);
  Tensor x = g.addVariable("x", 4096);
  g.setTileMapping(x, 7);
  auto exe = Compile(g, Program::Sequence({}));
  ASSERT_FALSE(exe.ok());
  EXPECT_NE(exe.status().message().find("tile memory exceeded"),
            std::string::npos);
}

}  // namespace
}  // namespace repro
