// Failure injection: malformed graphs, inconsistent plans, and bad inputs
// must fail loudly (Status for data-dependent conditions, fatal checks for
// API misuse) -- never silently compute garbage.
#include <gtest/gtest.h>

#include "core/butterfly.h"
#include "core/fft.h"
#include "ipusim/codelet.h"
#include "ipusim/engine.h"
#include "ipusim/matmul.h"
#include "linalg/gemm.h"
#include "linalg/spmm.h"

namespace repro {
namespace {

using namespace repro::ipu;

TEST(FailureInjection, EngineRejectsForeignExecutable) {
  Graph g1(Gc200());
  Graph g2(Gc200());
  Tensor t = g1.addVariable("x", 4);
  g1.setTileMapping(t, 0);
  auto exe = Compile(g1, Program::Sequence({}));
  ASSERT_TRUE(exe.ok());
  EXPECT_DEATH(Engine(g2, exe.take()), "another graph");
}

TEST(FailureInjection, VertexMissingFieldDiesAtExecution) {
  Graph g(Gc200());
  Tensor x = g.addVariable("x", 4);
  g.setTileMapping(x, 0);
  ComputeSetId cs = g.addComputeSet("cs");
  VertexId v = g.addVertex(cs, codelets::kRelu, 0);
  g.connect(v, "x", x);
  // "y" is never connected.
  auto exe = Compile(g, Program::Execute(cs));
  ASSERT_TRUE(exe.ok());
  Engine e(g, exe.take());
  EXPECT_DEATH(e.run(), "not connected");
}

TEST(FailureInjection, GemmVertexShapeMismatchDies) {
  Graph g(Gc200());
  Tensor a = g.addVariable("a", 4);
  Tensor b = g.addVariable("b", 4);
  Tensor c = g.addVariable("c", 4);
  g.setTileMapping(a, 0);
  g.setTileMapping(b, 0);
  g.setTileMapping(c, 0);
  ComputeSetId cs = g.addComputeSet("cs");
  VertexId v = g.addVertex(cs, codelets::kScalarGemm, 0);
  g.connect(v, "a", a);
  g.connect(v, "b", b);
  g.connect(v, "out", c, true);
  g.setInitialValue(v, "m", 4);  // claims 4x4x4 but buffers hold 4 elements
  g.setInitialValue(v, "k", 4);
  g.setInitialValue(v, "n", 4);
  auto exe = Compile(g, Program::Execute(cs));
  ASSERT_TRUE(exe.ok());
  Engine e(g, exe.take());
  EXPECT_DEATH(e.run(), "shape mismatch");
}

TEST(FailureInjection, ConnectEmptyTensorDies) {
  Graph g(Gc200());
  Tensor x = g.addVariable("x", 4);
  g.setTileMapping(x, 0);
  ComputeSetId cs = g.addComputeSet("cs");
  VertexId v = g.addVertex(cs, codelets::kRelu, 0);
  EXPECT_DEATH(g.connect(v, "x", x.slice(0, 0)), "empty tensor");
}

TEST(FailureInjection, VertexOnInvalidTileDies) {
  Graph g(Gc200());
  ComputeSetId cs = g.addComputeSet("cs");
  EXPECT_DEATH(g.addVertex(cs, codelets::kRelu, 1472), "out of range");
}

TEST(FailureInjection, MappingInvalidTileDies) {
  Graph g(Gc200());
  Tensor x = g.addVariable("x", 4);
  EXPECT_DEATH(g.setTileMapping(x, 99999), "out of range");
}

TEST(FailureInjection, WriteTensorWrongSizeDies) {
  Graph g(Gc200());
  Tensor x = g.addVariable("x", 4);
  g.setTileMapping(x, 0);
  auto exe = Compile(g, Program::Sequence({}));
  Engine e(g, exe.take());
  std::vector<float> wrong(3);
  EXPECT_DEATH(e.writeTensor(x, wrong), "size mismatch");
}

TEST(FailureInjection, MatmulZeroDimensionDies) {
  Graph g(Gc200());
  EXPECT_DEATH(
      { auto r = BuildMatMul(g, 0, 4, 4, MatMulImpl::kPoplin); (void)r; },
      "empty matmul");
}

TEST(FailureInjection, GemmHostShapeMismatchDies) {
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(3, 4, rng);
  Matrix b = Matrix::RandomNormal(5, 2, rng);  // inner dims disagree
  Matrix c(3, 2);
  EXPECT_DEATH(GemmNaive(a, b, c), "GemmNaive");
}

TEST(FailureInjection, SpmmShapeMismatchDies) {
  Rng rng(2);
  Csr s = RandomCsr(4, 4, 0.5, rng);
  Matrix b = Matrix::RandomNormal(5, 2, rng);
  Matrix c(4, 2);
  EXPECT_DEATH(SpmmCsr(s, b, c), "shape mismatch");
}

TEST(FailureInjection, CircularConvolveSizeMismatchDies) {
  std::vector<float> c(8), x(7), out(8);
  EXPECT_DEATH(core::CircularConvolve(c, x, out), "size mismatch");
}

TEST(FailureInjection, ButterflyStaleWorkspaceDies) {
  Rng rng(3);
  core::Butterfly bf(8, core::ButterflyParam::kDense2x2, false, rng);
  core::Butterfly::Workspace ws;  // never filled by a Forward
  Matrix dy = Matrix::RandomNormal(2, 8, rng);
  Matrix dx(2, 8);
  EXPECT_DEATH(bf.Backward(ws, dy, dx), "stale");
}

TEST(FailureInjection, StatusOrTakeOnErrorDies) {
  StatusOr<int> err(Status::OutOfMemory("boom"));
  EXPECT_FALSE(err.ok());
  EXPECT_DEATH(err.value(), "boom");
}

TEST(FailureInjection, UnknownCodeletLookupDies) {
  EXPECT_DEATH(CodeletRegistry::Get().Lookup("DoesNotExist"),
               "unknown codelet");
}

TEST(FailureInjection, OversubscribedTileReportsFullestTile) {
  IpuArch tiny = Gc200();
  tiny.tile_memory_bytes = 2048;
  Graph g(tiny);
  Tensor x = g.addVariable("x", 4096);
  g.setTileMapping(x, 7);
  auto exe = Compile(g, Program::Sequence({}));
  ASSERT_FALSE(exe.ok());
  EXPECT_NE(exe.status().message().find("tile memory exceeded"),
            std::string::npos);
}

}  // namespace
}  // namespace repro
