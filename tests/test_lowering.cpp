#include <gtest/gtest.h>

#include "core/device_time.h"
#include "core/ipu_lowering.h"

namespace repro::core {
namespace {

const ipu::IpuArch kArch = ipu::Gc200();

TEST(IpuLowering, LinearProducesSaneTiming) {
  IpuLayerTiming t = TimeLinearIpu(kArch, 50, 1024, 1024);
  EXPECT_FALSE(t.streamed);
  EXPECT_GT(t.fwd_seconds, 0.0);
  EXPECT_LT(t.fwd_seconds, 1e-2);
  // Engine-counted flops include zero padding of partial edge blocks; the
  // useful-flop count is a tight lower bound.
  EXPECT_GE(t.flops, 2.0 * 50 * 1024 * 1024);
  EXPECT_LE(t.flops, 1.35 * 2.0 * 50 * 1024 * 1024);
}

TEST(IpuLowering, ButterflyHasLogNComputeSets) {
  IpuLayerTiming t = TimeButterflyIpu(kArch, 64, 1024);
  EXPECT_EQ(t.counts.compute_sets, 10u);
  EXPECT_GT(t.counts.vertices, 0u);
}

TEST(IpuLowering, PixelflyHasFewComputeSets) {
  // Flat butterfly = one block-sparse pass (+ low-rank matmuls): far fewer
  // supersteps than butterfly's log n -- the Fig. 7 contrast.
  PixelflyConfig pf;
  IpuLayerTiming bf = TimeButterflyIpu(kArch, 64, 1024);
  IpuLayerTiming pfly = TimePixelflyIpu(kArch, 64, pf);
  EXPECT_LT(pfly.counts.compute_sets, bf.counts.compute_sets);
}

TEST(IpuLowering, ButterflyBreakEvenNearPaperPoint) {
  // Fig. 6 (right): butterfly/Linear ratio ~1 at N = 2^10, <1 above, and a
  // mild worst case (~1.4x) at small N.
  auto ratio = [&](std::size_t n) {
    return TimeButterflyIpu(kArch, n, n).fwd_seconds /
           TimeLinearIpu(kArch, n, n, n).fwd_seconds;
  };
  // Paper: worst degradation 1.4x at N = 2^7; our per-superstep fixed costs
  // land a little higher but stay far below the GPU's 14.45x.
  EXPECT_LT(ratio(128), 4.0);
  EXPECT_GT(ratio(128), 0.8);
  EXPECT_NEAR(ratio(1024), 1.0, 0.5);
  EXPECT_LT(ratio(4096), 1.0);  // butterfly wins at large N
  EXPECT_GT(ratio(4096), 0.3);  // ... but only moderately (paper: 1.6x max)
}

TEST(IpuLowering, CustomVerticesBeatPopTorchParity) {
  // The Section-5 optimisation discussion: custom vertices would make
  // butterfly far faster than the framework lowering at large N.
  IpuLoweringOptions parity{.poptorch_parity = true};
  IpuLoweringOptions custom{.poptorch_parity = false};
  const double tp = TimeButterflyIpu(kArch, 4096, 4096, parity).fwd_seconds;
  const double tc = TimeButterflyIpu(kArch, 4096, 4096, custom).fwd_seconds;
  EXPECT_LT(tc, 0.5 * tp);
}

TEST(IpuLowering, FastfoodSlowerThanLinearAtShlShape) {
  // Table 4 (IPU): fastfood 60.7s vs baseline 24.7s -- the permutation and
  // 2 log n Hadamard supersteps dominate at batch 50.
  const double ff = TimeFastfoodIpu(kArch, 50, 1024).fwd_seconds;
  const double lin = TimeLinearIpu(kArch, 50, 1024, 1024).fwd_seconds;
  EXPECT_GT(ff, 1.2 * lin);
}

TEST(IpuLowering, LowRankNearParityWithLinear) {
  // Table 4 (IPU): low-rank 21.75 s vs baseline 24.69 s -- only slightly
  // faster, because per-op overheads dominate the tiny rank-1 compute.
  const double lr = TimeLowRankIpu(kArch, 50, 1024, 1024, 1).fwd_seconds;
  const double lin = TimeLinearIpu(kArch, 50, 1024, 1024).fwd_seconds;
  EXPECT_LT(lr, 1.5 * lin);
  EXPECT_GT(lr, 0.4 * lin);
}

TEST(IpuLowering, HugeLinearFallsBackToStreaming) {
  IpuLayerTiming t = TimeLinearIpu(kArch, 16384, 16384, 16384);
  EXPECT_TRUE(t.streamed);
  // 3 * 1 GiB at 20 GB/s floor.
  EXPECT_GT(t.fwd_seconds, 0.1);
}

TEST(IpuLowering, MemoryGrowsWithN) {
  IpuLayerTiming small = TimeButterflyIpu(kArch, 128, 128);
  IpuLayerTiming large = TimeButterflyIpu(kArch, 1024, 1024);
  EXPECT_GT(large.counts.total_bytes, small.counts.total_bytes);
  EXPECT_GT(large.counts.edges, small.counts.edges);
}

TEST(DeviceTime, AllMethodsAllDevicesPositive) {
  for (Device d : kAllDevices) {
    for (Method m : kAllMethods) {
      MethodTime t = ForwardSeconds(d, m, 128, 128);
      EXPECT_GT(t.seconds, 0.0) << DeviceName(d) << " " << MethodName(m);
      EXPECT_LT(t.seconds, 1.0);
    }
  }
}

TEST(DeviceTime, IpuBaselineBeatsGpuAtShlShape) {
  // Table 4: IPU baseline trains ~2x faster than the GPU (24.7 vs 49.5 s).
  ShlShape shape;
  const double ipu =
      TrainStepSeconds(Device::kIpu, Method::kBaseline, shape).seconds;
  const double gpu =
      TrainStepSeconds(Device::kGpuNoTc, Method::kBaseline, shape).seconds;
  EXPECT_LT(ipu, gpu);
}

TEST(DeviceTime, ButterflyIpuSpeedupOverGpu) {
  // Table 4's headline: butterfly training is ~1.6x faster on IPU than GPU.
  ShlShape shape;
  const double ipu =
      TrainStepSeconds(Device::kIpu, Method::kButterfly, shape).seconds;
  const double gpu =
      TrainStepSeconds(Device::kGpuNoTc, Method::kButterfly, shape).seconds;
  EXPECT_LT(ipu, gpu);
  EXPECT_GT(gpu / ipu, 1.1);
  EXPECT_LT(gpu / ipu, 4.5);
}

TEST(DeviceTime, PixelflyIpuSlowerThanGpu) {
  // Table 4: pixelfly is the one method where the IPU *loses* (71.6 vs 56.0).
  ShlShape shape;
  const double ipu =
      TrainStepSeconds(Device::kIpu, Method::kPixelfly, shape).seconds;
  const double gpu =
      TrainStepSeconds(Device::kGpuNoTc, Method::kPixelfly, shape).seconds;
  EXPECT_GT(ipu, gpu);
}

TEST(DeviceTime, PixelflyGpuBenefitsFromStructure) {
  // On the GPU pixelfly beats butterfly (1.17x faster than baseline in the
  // paper); block alignment is a dense-processor advantage.
  ShlShape shape;
  const double pf =
      TrainStepSeconds(Device::kGpuNoTc, Method::kPixelfly, shape).seconds;
  const double bf =
      TrainStepSeconds(Device::kGpuNoTc, Method::kButterfly, shape).seconds;
  EXPECT_LT(pf, bf);
}

TEST(DeviceTime, ScaledPixelflyConfigMatchesPaperAt1024) {
  PixelflyConfig pf = ScaledPixelflyConfig(1024);
  EXPECT_EQ(pf.block_size, 16u);
  EXPECT_EQ(pf.butterfly_size, 64u);
  EXPECT_EQ(pf.low_rank, 96u);
  EXPECT_EQ(pf.paramCount(), 393216u);
}

}  // namespace
}  // namespace repro::core
