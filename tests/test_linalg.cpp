#include <gtest/gtest.h>

#include <cmath>

#include "linalg/gemm.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "linalg/spmm.h"

namespace repro {
namespace {

TEST(Matrix, BasicAccessors) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  m.at(2, 3) = 5.0f;
  EXPECT_FLOAT_EQ(m(2, 3), 5.0f);
}

TEST(Matrix, IdentityAndTranspose) {
  Matrix i = Matrix::Identity(4);
  EXPECT_TRUE(AllClose(i, i.Transposed()));
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(3, 5, rng);
  Matrix att = a.Transposed().Transposed();
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a, att), 0.0);
}

TEST(Matrix, ArithmeticOps) {
  Matrix a(2, 2, 1.0f), b(2, 2, 2.0f);
  a += b;
  EXPECT_FLOAT_EQ(a(0, 0), 3.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a(1, 1), 1.0f);
  a *= 4.0f;
  EXPECT_FLOAT_EQ(a(0, 1), 4.0f);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m(1, 2);
  m(0, 0) = 3.0f;
  m(0, 1) = 4.0f;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(Matrix, AllCloseTolerances) {
  Matrix a(1, 1, 1.0f), b(1, 1, 1.0001f);
  EXPECT_TRUE(AllClose(a, b, 1e-3, 1e-3));
  EXPECT_FALSE(AllClose(a, Matrix(1, 1, 2.0f), 1e-4, 1e-4));
}

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, BlockedMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  Matrix a = Matrix::RandomNormal(m, k, rng);
  Matrix b = Matrix::RandomNormal(k, n, rng);
  Matrix c1(m, n), c2(m, n);
  GemmNaive(a, b, c1);
  GemmBlocked(a, b, c2);
  EXPECT_TRUE(AllClose(c1, c2, 1e-4, 1e-4)) << MaxAbsDiff(c1, c2);
}

TEST_P(GemmSizes, TransAMatchesExplicitTranspose) {
  auto [m, k, n] = GetParam();
  Rng rng(7);
  Matrix at = Matrix::RandomNormal(k, m, rng);  // A^T stored as (k x m)
  Matrix b = Matrix::RandomNormal(k, n, rng);
  Matrix c1(m, n), c2(m, n);
  GemmTransA(at, b, c1);
  GemmNaive(at.Transposed(), b, c2);
  EXPECT_TRUE(AllClose(c1, c2, 1e-4, 1e-4));
}

TEST_P(GemmSizes, TransBMatchesExplicitTranspose) {
  auto [m, k, n] = GetParam();
  Rng rng(8);
  Matrix a = Matrix::RandomNormal(m, k, rng);
  Matrix bt = Matrix::RandomNormal(n, k, rng);  // B^T stored as (n x k)
  Matrix c1(m, n), c2(m, n);
  GemmTransB(a, bt, c1);
  GemmNaive(a, bt.Transposed(), c2);
  EXPECT_TRUE(AllClose(c1, c2, 1e-4, 1e-4));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 5, 7},
                      std::tuple{16, 16, 16}, std::tuple{33, 17, 65},
                      std::tuple{64, 128, 32}, std::tuple{100, 1, 100},
                      std::tuple{1, 200, 1}, std::tuple{70, 70, 70}));

TEST(Gemm, AccumulateMode) {
  Rng rng(5);
  Matrix a = Matrix::RandomNormal(4, 4, rng);
  Matrix b = Matrix::RandomNormal(4, 4, rng);
  Matrix c(4, 4, 1.0f);
  Matrix ref(4, 4);
  GemmNaive(a, b, ref);
  GemmBlocked(a, b, c, /*accumulate=*/true);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i] + 1.0f, 1e-4f);
  }
}

TEST(Gemm, IdentityIsNoop) {
  Rng rng(6);
  Matrix a = Matrix::RandomNormal(8, 8, rng);
  Matrix c = MatMul(a, Matrix::Identity(8));
  EXPECT_TRUE(AllClose(c, a));
}

TEST(Gemm, Gemv) {
  Rng rng(9);
  Matrix a = Matrix::RandomNormal(5, 3, rng);
  std::vector<float> x{1.0f, 2.0f, 3.0f}, y(5);
  Gemv(a, x, y);
  Matrix xm(3, 1);
  for (int i = 0; i < 3; ++i) xm(i, 0) = x[i];
  Matrix ym = MatMul(a, xm);
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(y[i], ym(i, 0), 1e-5f);
}

TEST(Gemm, FlopsCount) {
  EXPECT_DOUBLE_EQ(GemmFlops(2, 3, 4), 48.0);
}

TEST(Sparse, DenseRoundTripCsr) {
  Rng rng(10);
  Matrix d = Matrix::RandomNormal(13, 9, rng);
  // zero half the entries
  for (std::size_t i = 0; i < d.size(); i += 2) d.data()[i] = 0.0f;
  Csr csr = DenseToCsr(d);
  EXPECT_TRUE(AllClose(CsrToDense(csr), d));
}

TEST(Sparse, DenseRoundTripCoo) {
  Rng rng(11);
  Matrix d = Matrix::RandomNormal(7, 11, rng);
  for (std::size_t i = 0; i < d.size(); i += 3) d.data()[i] = 0.0f;
  Coo coo = DenseToCoo(d);
  EXPECT_TRUE(AllClose(CooToDense(coo), d));
}

TEST(Sparse, FormatConversions) {
  Rng rng(12);
  Csr csr = RandomCsr(20, 30, 0.1, rng);
  Coo coo = CsrToCoo(csr);
  Csr back = CooToCsr(coo);
  EXPECT_EQ(back.nnz(), csr.nnz());
  EXPECT_TRUE(AllClose(CsrToDense(back), CsrToDense(csr)));
}

class SparseDensity : public ::testing::TestWithParam<double> {};

TEST_P(SparseDensity, RandomCsrHitsExactNnz) {
  Rng rng(13);
  const double density = GetParam();
  Csr csr = RandomCsr(64, 64, density, rng);
  EXPECT_EQ(csr.nnz(),
            static_cast<std::size_t>(std::llround(density * 64 * 64)));
  // row_ptr is consistent
  EXPECT_EQ(csr.row_ptr.size(), 65u);
  EXPECT_EQ(csr.row_ptr.back(), csr.nnz());
  // column indices sorted and unique per row
  for (std::size_t r = 0; r < 64; ++r) {
    for (std::uint32_t i = csr.row_ptr[r] + 1; i < csr.row_ptr[r + 1]; ++i) {
      EXPECT_LT(csr.col_idx[i - 1], csr.col_idx[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, SparseDensity,
                         ::testing::Values(0.01, 0.05, 0.1, 0.5, 0.9, 1.0));

TEST(Spmm, CsrMatchesDense) {
  Rng rng(14);
  Csr s = RandomCsr(17, 23, 0.2, rng);
  Matrix b = Matrix::RandomNormal(23, 5, rng);
  Matrix ref = MatMul(CsrToDense(s), b);
  EXPECT_TRUE(AllClose(SpmmCsr(s, b), ref, 1e-4, 1e-4));
}

TEST(Spmm, CooMatchesDense) {
  Rng rng(15);
  Csr s = RandomCsr(11, 19, 0.3, rng);
  Coo coo = CsrToCoo(s);
  Matrix b = Matrix::RandomNormal(19, 7, rng);
  Matrix ref = MatMul(CsrToDense(s), b);
  EXPECT_TRUE(AllClose(SpmmCoo(coo, b), ref, 1e-4, 1e-4));
}

TEST(Spmm, EmptyMatrix) {
  Rng rng(16);
  Csr s = RandomCsr(4, 4, 0.0, rng);
  EXPECT_EQ(s.nnz(), 0u);
  Matrix b = Matrix::RandomNormal(4, 2, rng);
  Matrix c = SpmmCsr(s, b);
  EXPECT_DOUBLE_EQ(c.FrobeniusNorm(), 0.0);
}

TEST(Spmm, AccumulateMode) {
  Rng rng(17);
  Csr s = RandomCsr(5, 5, 0.4, rng);
  Matrix b = Matrix::RandomNormal(5, 3, rng);
  Matrix c(5, 3, 2.0f);
  Matrix ref = SpmmCsr(s, b);
  SpmmCsr(s, b, c, /*accumulate=*/true);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i] + 2.0f, 1e-4f);
  }
}

TEST(Sparse, BytesAccounting) {
  Rng rng(18);
  Csr csr = RandomCsr(10, 10, 0.5, rng);
  EXPECT_EQ(csr.bytes(), csr.nnz() * 8 + 11 * 4);
  Coo coo = CsrToCoo(csr);
  EXPECT_EQ(coo.bytes(), coo.nnz() * 12);
}

TEST(Sparse, DensityComputation) {
  Rng rng(19);
  Csr csr = RandomCsr(100, 100, 0.25, rng);
  EXPECT_NEAR(csr.density(), 0.25, 1e-9);
}

}  // namespace
}  // namespace repro
