#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "linalg/gemm.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "nn/structured.h"
#include "nn/trainer.h"

namespace repro::nn {
namespace {

// Generic numeric gradient check for any layer.
void GradCheck(Layer& layer, std::size_t batch, double tol = 2e-2) {
  Rng rng(99);
  Matrix x = Matrix::RandomNormal(batch, layer.inDim(), rng);
  Matrix g = Matrix::RandomNormal(batch, layer.outDim(), rng);
  Matrix y;
  layer.Forward(x, y, /*train=*/true);
  layer.zeroGrad();
  Matrix dx;
  layer.Backward(g, dx);

  auto loss = [&]() {
    Matrix yy;
    layer.Forward(x, yy, /*train=*/false);
    double l = 0.0;
    for (std::size_t i = 0; i < yy.size(); ++i) {
      l += static_cast<double>(yy.data()[i]) * g.data()[i];
    }
    return l;
  };
  const float eps = 1e-3f;
  for (auto& p : layer.parameters()) {
    for (std::size_t i = 0; i < p.value.size(); i += 11) {
      const float orig = p.value[i];
      p.value[i] = orig + eps;
      const double lp = loss();
      p.value[i] = orig - eps;
      const double lm = loss();
      p.value[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(p.grad[i], numeric, tol * std::max(1.0, std::abs(numeric)))
          << layer.name() << " param " << i;
    }
  }
  for (std::size_t i = 0; i < x.size(); i += 7) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double lp = loss();
    x.data()[i] = orig - eps;
    const double lm = loss();
    x.data()[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(dx.data()[i], numeric, tol * std::max(1.0, std::abs(numeric)))
        << layer.name() << " input " << i;
  }
}

TEST(LinearLayer, GradCheck) {
  Rng rng(1);
  Linear l(12, 8, rng);
  GradCheck(l, 3);
}

TEST(LinearLayer, ForwardMatchesGemm) {
  Rng rng(2);
  Linear l(5, 4, rng, /*bias=*/false);
  Matrix x = Matrix::RandomNormal(3, 5, rng);
  Matrix y;
  l.Forward(x, y, false);
  Matrix ref = MatMul(x, l.weight());
  EXPECT_TRUE(AllClose(y, ref));
}

TEST(LinearLayer, ParamCount) {
  Rng rng(3);
  Linear l(1024, 1024, rng);
  EXPECT_EQ(l.paramCount(), 1024u * 1024 + 1024);
}

TEST(ButterflyLayerTest, GradCheck) {
  Rng rng(4);
  ButterflyLayer l(16, core::ButterflyParam::kDense2x2, rng);
  GradCheck(l, 2);
}

TEST(ButterflyLayerTest, GivensGradCheck) {
  Rng rng(5);
  ButterflyLayer l(16, core::ButterflyParam::kGivens, rng);
  GradCheck(l, 2);
}

TEST(PixelflyLayerTest, GradCheck) {
  Rng rng(6);
  core::PixelflyConfig cfg;
  cfg.n = 16;
  cfg.block_size = 4;
  cfg.butterfly_size = 4;
  cfg.low_rank = 2;
  PixelflyLayer l(cfg, rng);
  GradCheck(l, 2);
}

TEST(FastfoodLayerTest, GradCheck) {
  Rng rng(7);
  FastfoodLayer l(16, rng);
  GradCheck(l, 3);
}

TEST(FastfoodLayerTest, ParamCountIs3NPlusBias) {
  Rng rng(8);
  FastfoodLayer l(1024, rng);
  EXPECT_EQ(l.paramCount(), 3u * 1024 + 1024);
}

TEST(CirculantLayerTest, GradCheck) {
  Rng rng(9);
  CirculantLayer l(16, rng);
  GradCheck(l, 2);
}

TEST(CirculantLayerTest, ShiftKernelShifts) {
  Rng rng(10);
  CirculantLayer l(8, rng);
  // Set c = delta_1: output = input circularly shifted by one.
  auto ps = l.parameters();
  std::fill(ps[0].value.begin(), ps[0].value.end(), 0.0f);
  ps[0].value[1] = 1.0f;
  Matrix x(1, 8);
  for (int i = 0; i < 8; ++i) x(0, i) = static_cast<float>(i);
  Matrix y;
  l.Forward(x, y, false);
  EXPECT_NEAR(y(0, 0), 7.0f, 1e-4);
  EXPECT_NEAR(y(0, 1), 0.0f, 1e-4);
  EXPECT_NEAR(y(0, 7), 6.0f, 1e-4);
}

TEST(LowRankLayerTest, GradCheck) {
  Rng rng(11);
  LowRankLayer l(10, 8, 2, rng);
  GradCheck(l, 3);
}

TEST(ReluLayer, ForwardBackward) {
  Relu r(4);
  Matrix x(2, 4);
  x(0, 0) = -1;
  x(0, 1) = 2;
  x(1, 2) = -3;
  x(1, 3) = 4;
  Matrix y;
  r.Forward(x, y, true);
  EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 1), 2.0f);
  Matrix dy(2, 4, 1.0f), dx;
  r.Backward(dy, dx);
  EXPECT_FLOAT_EQ(dx(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(dx(1, 3), 1.0f);
}

TEST(Loss, UniformLogitsGiveLogC) {
  Matrix logits(4, 10);
  std::vector<std::uint8_t> labels{0, 3, 7, 9};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  EXPECT_NEAR(r.loss, std::log(10.0), 1e-6);
}

TEST(Loss, PerfectPredictionLowLoss) {
  Matrix logits(2, 3);
  logits(0, 1) = 50.0f;
  logits(1, 2) = 50.0f;
  std::vector<std::uint8_t> labels{1, 2};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  EXPECT_LT(r.loss, 1e-6);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
}

TEST(Loss, GradCheck) {
  Rng rng(12);
  Matrix logits = Matrix::RandomNormal(3, 5, rng);
  std::vector<std::uint8_t> labels{0, 2, 4};
  Matrix dlogits;
  SoftmaxCrossEntropy(logits, labels, &dlogits);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float orig = logits.data()[i];
    logits.data()[i] = orig + eps;
    const double lp = SoftmaxCrossEntropy(logits, labels).loss;
    logits.data()[i] = orig - eps;
    const double lm = SoftmaxCrossEntropy(logits, labels).loss;
    logits.data()[i] = orig;
    EXPECT_NEAR(dlogits.data()[i], (lp - lm) / (2 * eps), 1e-3);
  }
}

TEST(Loss, GradientsSumToZeroPerRow) {
  Rng rng(13);
  Matrix logits = Matrix::RandomNormal(2, 6, rng);
  std::vector<std::uint8_t> labels{1, 5};
  Matrix d;
  SoftmaxCrossEntropy(logits, labels, &d);
  for (std::size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 6; ++c) sum += d(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(Optimizer, SgdDescendsQuadratic) {
  // minimise f(w) = 0.5 * w^2 by SGD with momentum.
  std::vector<float> w{10.0f}, g{0.0f};
  Sgd opt({{std::span<float>(w), std::span<float>(g)}}, {0.1, 0.9, 0.0});
  for (int i = 0; i < 200; ++i) {
    g[0] = w[0];
    opt.Step();
  }
  EXPECT_NEAR(w[0], 0.0f, 1e-3f);
}

TEST(Optimizer, MomentumAcceleratesFirstSteps) {
  std::vector<float> w1{1.0f}, g1{1.0f}, w2{1.0f}, g2{1.0f};
  Sgd no_mom({{std::span<float>(w1), std::span<float>(g1)}}, {0.1, 0.0, 0.0});
  Sgd mom({{std::span<float>(w2), std::span<float>(g2)}}, {0.1, 0.9, 0.0});
  for (int i = 0; i < 3; ++i) {
    g1[0] = 1.0f;
    g2[0] = 1.0f;
    no_mom.Step();
    mom.Step();
  }
  EXPECT_LT(w2[0], w1[0]);  // momentum accumulates
}

TEST(Model, ShlParamCountsMatchPaperTable4) {
  core::ShlShape shape;
  Rng rng(20);
  // Paper Table 4 N_params column, reproduced exactly for four methods and
  // within rounding for butterfly (5120 vs 5116 hidden parameters).
  auto count = [&](core::Method m) {
    Rng r(20);
    Sequential model = BuildShl(m, shape, r);
    return model.paramCount();
  };
  EXPECT_EQ(count(core::Method::kBaseline), 1059850u);
  EXPECT_EQ(count(core::Method::kFastfood), 14346u);
  EXPECT_EQ(count(core::Method::kCirculant), 12298u);
  EXPECT_EQ(count(core::Method::kLowRank), 13322u);
  EXPECT_EQ(count(core::Method::kPixelfly), 404490u);
  EXPECT_EQ(count(core::Method::kButterfly), 16394u);  // paper: 16390
}

TEST(Model, ForwardShapes) {
  core::ShlShape shape;
  Rng rng(21);
  Sequential model = BuildShl(core::Method::kButterfly, shape, rng);
  Matrix x = Matrix::RandomNormal(4, 1024, rng);
  const Matrix& out = model.Forward(x, false);
  EXPECT_EQ(out.rows(), 4u);
  EXPECT_EQ(out.cols(), 10u);
}

TEST(Trainer, LearnsSeparableToyProblem) {
  // Tiny linearly separable task: class = argmax of 4 prototype dot products.
  Rng rng(22);
  data::Dataset d;
  d.num_classes = 4;
  const std::size_t n = 256, dim = 64;
  d.images = Matrix::RandomNormal(n, dim, rng);
  d.labels.resize(n);
  Matrix protos = Matrix::RandomNormal(4, dim, rng);
  for (std::size_t i = 0; i < n; ++i) {
    double best = -1e30;
    int arg = 0;
    for (int c = 0; c < 4; ++c) {
      double dot = 0.0;
      for (std::size_t j = 0; j < dim; ++j) dot += protos(c, j) * d.images(i, j);
      if (dot > best) {
        best = dot;
        arg = c;
      }
    }
    d.labels[i] = static_cast<std::uint8_t>(arg);
  }
  Sequential model;
  Rng mrng(23);
  model.add(std::make_unique<Linear>(dim, 32, mrng));
  model.add(std::make_unique<Relu>(32));
  model.add(std::make_unique<Linear>(32, 4, mrng));
  TrainConfig cfg;
  cfg.epochs = 60;
  cfg.batch_size = 32;
  cfg.lr = 0.05;
  TrainResult res = Train(model, d, d, cfg);
  EXPECT_GT(res.test_accuracy, 85.0);
}

TEST(Trainer, DeterministicAcrossRuns) {
  data::SyntheticConfig dcfg;
  dcfg.num_samples = 200;
  data::Dataset d = data::SyntheticCifar10(dcfg);
  auto run = [&]() {
    Rng mrng(30);
    core::ShlShape shape;
    Sequential model = BuildShl(core::Method::kLowRank, shape, mrng);
    TrainConfig cfg;
    cfg.epochs = 1;
    return Train(model, d, d, cfg).test_accuracy;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Model, RejectsDimMismatch) {
  Rng rng(40);
  Sequential model;
  model.add(std::make_unique<Linear>(8, 4, rng));
  EXPECT_DEATH(model.add(std::make_unique<Relu>(8)), "dim mismatch");
}

TEST(Model, ZeroGradViaOptimizer) {
  Rng rng(41);
  Linear l(4, 4, rng);
  Matrix x = Matrix::RandomNormal(2, 4, rng);
  Matrix y, dx;
  l.Forward(x, y, true);
  l.Backward(y, dx);
  Sgd opt(l.parameters(), {0.1, 0.0, 0.0});
  opt.ZeroGrad();
  for (auto& p : l.parameters()) {
    for (float g : p.grad) EXPECT_EQ(g, 0.0f);
  }
}

TEST(Model, WeightDecayShrinksWeights) {
  std::vector<float> w{1.0f}, g{0.0f};
  Sgd opt({{std::span<float>(w), std::span<float>(g)}}, {0.1, 0.0, 0.5});
  for (int i = 0; i < 10; ++i) {
    g[0] = 0.0f;  // no data gradient; only decay acts
    opt.Step();
  }
  EXPECT_LT(w[0], 1.0f);
  EXPECT_GT(w[0], 0.0f);
}

TEST(FastfoodLayerTest, OrthonormalPipelinePreservesScale) {
  // With S = B = G = 1 the pipeline is H Pi H, a product of orthonormal
  // maps: norms are preserved exactly.
  Rng rng(42);
  FastfoodLayer l(64, rng);
  auto ps = l.parameters();
  std::fill(ps[0].value.begin(), ps[0].value.end(), 1.0f);  // B
  std::fill(ps[1].value.begin(), ps[1].value.end(), 1.0f);  // G
  std::fill(ps[2].value.begin(), ps[2].value.end(), 1.0f);  // S
  Matrix x = Matrix::RandomNormal(3, 64, rng);
  Matrix y;
  l.Forward(x, y, false);
  EXPECT_NEAR(y.FrobeniusNorm(), x.FrobeniusNorm(), 1e-3);
}

TEST(Trainer, EvaluateMatchesManualArgmax) {
  Rng rng(43);
  data::SyntheticConfig cfg;
  cfg.num_samples = 100;
  data::Dataset d = data::SyntheticCifar10(cfg);
  core::ShlShape shape;
  Sequential model = BuildShl(core::Method::kLowRank, shape, rng);
  const double acc = Evaluate(model, d);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 100.0);
}

TEST(Trainer, StepsCountMatchesSchedule) {
  Rng rng(44);
  data::SyntheticConfig cfg;
  cfg.num_samples = 200;
  data::Dataset d = data::SyntheticCifar10(cfg);
  core::ShlShape shape;
  Sequential model = BuildShl(core::Method::kCirculant, shape, rng);
  TrainConfig tcfg;
  tcfg.epochs = 2;
  tcfg.batch_size = 25;
  TrainResult res = Train(model, d, d, tcfg);
  // 200 * 0.85 = 170 train samples -> 6 full batches of 25, 2 epochs.
  EXPECT_EQ(res.steps, 12u);
  EXPECT_EQ(res.epoch_val_accuracy.size(), 2u);
}

}  // namespace
}  // namespace repro::nn
