#include <gtest/gtest.h>

#include "core/permutation.h"
#include "linalg/gemm.h"

namespace repro::core {
namespace {

TEST(Permutation, IdentityActsTrivially) {
  auto p = Permutation::Identity(8);
  EXPECT_TRUE(p.IsIdentity());
  std::vector<float> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto before = v;
  p.Apply(v);
  EXPECT_EQ(v, before);
}

TEST(Permutation, BitReversalIsInvolution) {
  auto p = Permutation::BitReversal(16);
  EXPECT_TRUE(p.Compose(p).IsIdentity());
}

TEST(Permutation, EvenOddSeparates) {
  auto p = Permutation::EvenOdd(8);
  std::vector<float> v{0, 1, 2, 3, 4, 5, 6, 7};
  p.Apply(v);
  const std::vector<float> want{0, 2, 4, 6, 1, 3, 5, 7};
  EXPECT_EQ(v, want);
}

TEST(Permutation, InverseComposesToIdentity) {
  Rng rng(5);
  auto p = Permutation::Random(32, rng);
  EXPECT_TRUE(p.Compose(p.Inverse()).IsIdentity());
  EXPECT_TRUE(p.Inverse().Compose(p).IsIdentity());
}

TEST(Permutation, ComposeAssociativity) {
  Rng rng(6);
  auto a = Permutation::Random(16, rng);
  auto b = Permutation::Random(16, rng);
  auto c = Permutation::Random(16, rng);
  auto left = a.Compose(b).Compose(c);
  auto right = a.Compose(b.Compose(c));
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(left[i], right[i]);
}

TEST(Permutation, ApplyToColumnsMatchesDense) {
  Rng rng(7);
  auto p = Permutation::Random(12, rng);
  Matrix x = Matrix::RandomNormal(4, 12, rng);
  Matrix y(4, 12);
  p.ApplyToColumns(x, y);
  // y_row = P_dense * x_row where P_dense(i, perm[i]) = 1.
  Matrix pd = p.ToDense();
  Matrix ref = MatMul(x, pd.Transposed());
  EXPECT_TRUE(AllClose(y, ref));
}

TEST(Permutation, DenseIsOrthogonal) {
  Rng rng(8);
  auto p = Permutation::Random(10, rng);
  Matrix pd = p.ToDense();
  Matrix prod = MatMul(pd, pd.Transposed());
  EXPECT_TRUE(AllClose(prod, Matrix::Identity(10)));
}

TEST(Permutation, RejectsInvalid) {
  EXPECT_DEATH(Permutation({0, 0, 1}), "invalid permutation");
  EXPECT_DEATH(Permutation({0, 5}), "invalid permutation");
}

TEST(Permutation, BitReversalRequiresPow2) {
  EXPECT_DEATH(Permutation::BitReversal(12), "power-of-two");
}

}  // namespace
}  // namespace repro::core
