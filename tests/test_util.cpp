#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <stdexcept>

#include "util/bitops.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace repro {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const double u = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[rng.Below(10)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 1% of total
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.Normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(17);
  auto p = rng.Permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, FillNormalStddev) {
  Rng rng(19);
  std::vector<float> v(10000);
  rng.FillNormal(v.data(), v.size(), 2.0f);
  OnlineStats s;
  for (float x : v) s.Add(x);
  EXPECT_NEAR(s.stddev(), 2.0, 0.08);
}

TEST(Stats, SummarizeBasics) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  Summary s = Summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Stats, EmptySummary) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, OnlineMatchesBatch) {
  Rng rng(3);
  std::vector<double> v;
  OnlineStats os;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(5.0, 3.0);
    v.push_back(x);
    os.Add(x);
  }
  Summary s = Summarize(v);
  EXPECT_NEAR(os.mean(), s.mean, 1e-9);
  EXPECT_NEAR(os.stddev(), s.stddev, 1e-9);
}

TEST(Bitops, IsPow2) {
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(2));
  EXPECT_TRUE(IsPow2(1024));
  EXPECT_FALSE(IsPow2(0));
  EXPECT_FALSE(IsPow2(3));
  EXPECT_FALSE(IsPow2(1023));
}

TEST(Bitops, Log2Exact) {
  EXPECT_EQ(Log2(1), 0u);
  EXPECT_EQ(Log2(2), 1u);
  EXPECT_EQ(Log2(1024), 10u);
  EXPECT_EQ(Log2(8192), 13u);
}

TEST(Bitops, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(784), 1024u);
  EXPECT_EQ(NextPow2(1024), 1024u);
}

TEST(Bitops, BitReverse) {
  EXPECT_EQ(BitReverse(0b001, 3), 0b100u);
  EXPECT_EQ(BitReverse(0b110, 3), 0b011u);
  EXPECT_EQ(BitReverse(1, 10), 512u);
}

TEST(Bitops, BitReverseIsInvolution) {
  for (std::uint32_t i = 0; i < 256; ++i) {
    EXPECT_EQ(BitReverse(BitReverse(i, 8), 8), i);
  }
}

TEST(Bitops, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(CeilDiv(1, 100), 1u);
}

TEST(Units, CyclesToSeconds) {
  EXPECT_DOUBLE_EQ(CyclesToSeconds(1330000000ull, 1.33e9), 1.0);
  EXPECT_NEAR(GFlops(2e12, 1.0), 2000.0, 1e-9);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  // header separator present
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, CsvEscapesCommas) {
  Table t({"a", "b"});
  t.AddRow({"x,y", "2"});
  EXPECT_NE(t.ToCsv().find("\"x,y\""), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Int(42), "42");
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--n=128", "--mode", "fast", "--flag"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.GetInt("n", 0), 128);
  EXPECT_EQ(cli.GetString("mode", ""), "fast");
  EXPECT_TRUE(cli.GetBool("flag", false));
  EXPECT_EQ(cli.GetInt("missing", 7), 7);
}

TEST(Cli, BoolFalseValues) {
  const char* argv[] = {"prog", "--x=false", "--y=0"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_FALSE(cli.GetBool("x", true));
  EXPECT_FALSE(cli.GetBool("y", true));
}

TEST(Parallel, CoversFullRangeExactlyOnce) {
  std::vector<int> hits(1000, 0);
  ParallelFor(0, 1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, MinGrainLimitsSharding) {
  // With grain >= range the callback must run exactly once (serially).
  int calls = 0;
  ParallelFor(0, 10,
              [&](std::size_t lo, std::size_t hi) {
                ++calls;
                EXPECT_EQ(lo, 0u);
                EXPECT_EQ(hi, 10u);
              },
              /*min_grain=*/100);
  EXPECT_EQ(calls, 1);
}

TEST(Parallel, WorkersAtLeastOne) { EXPECT_GE(ParallelWorkers(), 1u); }

TEST(Parallel, InvertedRangeIsNoop) {
  // An inverted range means "no work", same as an empty one; shard-size
  // arithmetic upstream must never turn it into a crash.
  bool called = false;
  ParallelFor(5, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, ZeroGrainDies) {
  EXPECT_DEATH(ParallelFor(0, 4, [](std::size_t, std::size_t) {},
                           /*min_grain=*/0),
               "min_grain");
}

TEST(Parallel, PropagatesWorkerException) {
  EXPECT_THROW(
      ParallelForWith(4, 0, 100,
                      [](std::size_t lo, std::size_t) {
                        if (lo == 0) throw std::runtime_error("shard failed");
                      }),
      std::runtime_error);
}

TEST(Parallel, SetParallelWorkersOverridesAndRestores) {
  SetParallelWorkers(3);
  EXPECT_EQ(ParallelWorkers(), 3u);
  SetParallelWorkers(0);  // back to the environment/hardware default
  EXPECT_GE(ParallelWorkers(), 1u);
}

TEST(Parallel, ExplicitWorkerCountCoversRange) {
  std::vector<int> hits(257, 0);
  std::mutex mu;
  ParallelForWith(8, 0, 257, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, NestedParallelForCompletes) {
  // The pool uses a helping wait, so a shard may itself shard without
  // deadlocking even when every worker is busy.
  std::atomic<int> total{0};
  ParallelForWith(4, 0, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      ParallelForWith(4, 0, 8, [&](std::size_t ilo, std::size_t ihi) {
        total += static_cast<int>(ihi - ilo);
      });
    }
  });
  EXPECT_EQ(total.load(), 32);
}

}  // namespace
}  // namespace repro
