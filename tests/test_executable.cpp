// ipu::Executable artifact contract: deterministic bytes (host wall clock
// and host thread count excluded), save -> load round trips that reproduce
// run reports, fig5-style ledgers, and serving logits bit for bit, clean
// Status rejection of damaged or version-mismatched files, and the
// content-addressed ExeCache over it all.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ipusim/codelet.h"
#include "ipusim/exe_cache.h"
#include "ipusim/executable.h"
#include "ipusim/matmul.h"
#include "ipusim/profiler.h"
#include "ipusim/session.h"
#include "nn/export.h"
#include "nn/model.h"
#include "core/device_time.h"
#include "serve/model_plan.h"
#include "util/parallel.h"

namespace repro::ipu {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

// A compiled session around a mid-sized matmul: multi-compute-set program,
// host IO on both ends, nontrivial exchange -- the full artifact surface.
struct CompiledMatMul {
  std::unique_ptr<Session> session;
  MatMulPlan plan;
};

CompiledMatMul MakeMatMul(std::size_t host_threads = 0) {
  CompiledMatMul c;
  c.session = std::make_unique<Session>(
      Gc200(), SessionOptions{.host_threads = host_threads});
  auto plan = BuildMatMul(c.session->graph(), 64, 128, 32, MatMulImpl::kPoplin);
  EXPECT_TRUE(plan.ok()) << plan.status().message();
  c.plan = plan.take();
  Status s = c.session->compile(c.plan.prog);
  EXPECT_TRUE(s.ok()) << s.message();
  return c;
}

TEST(ExecutableBytes, SerializeDeserializeSerializeIsIdentity) {
  CompiledMatMul c = MakeMatMul();
  const std::vector<std::uint8_t> bytes = c.session->executable().Serialize();
  StatusOr<Executable> back = Executable::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back.value().Serialize(), bytes);
}

TEST(ExecutableBytes, TwoCompilesProduceIdenticalBytes) {
  // PassReport::seconds is real wall clock and differs between these two
  // compiles; the artifact bytes must not contain it (or any other
  // nondeterministic emission).
  CompiledMatMul a = MakeMatMul();
  CompiledMatMul b = MakeMatMul();
  EXPECT_EQ(a.session->executable().Serialize(),
            b.session->executable().Serialize());
  // The in-memory stats keep wall clock for reporting...
  // ...but a deserialized artifact reads it as exactly 0.
  StatusOr<Executable> loaded =
      Executable::Deserialize(a.session->executable().Serialize());
  ASSERT_TRUE(loaded.ok());
  ASSERT_FALSE(loaded.value().stats.pass_reports.empty());
  for (const PassReport& p : loaded.value().stats.pass_reports) {
    EXPECT_EQ(p.seconds, 0.0);
  }
}

TEST(ExecutableBytes, BitwiseIdenticalAcrossHostThreads) {
  SetParallelWorkers(1);
  CompiledMatMul t1 = MakeMatMul(1);
  SetParallelWorkers(8);
  CompiledMatMul t8 = MakeMatMul(8);
  SetParallelWorkers(0);
  EXPECT_EQ(t1.session->executable().Serialize(),
            t8.session->executable().Serialize());
}

TEST(ExecutableRoundTrip, SaveLoadReproducesRunReportAndTensorBits) {
  CompiledMatMul cold = MakeMatMul();
  const std::string path = TempPath("roundtrip.ipuexe");
  ASSERT_TRUE(cold.session->save(path).ok());

  // Fresh session, no graph built: the loaded artifact is self-contained.
  // Tensor handles are value offsets, so the cold session's handles address
  // the loaded snapshot directly.
  Session warm(Gc200());
  ASSERT_TRUE(warm.load(path).ok());
  ASSERT_TRUE(warm.compiled());

  Rng rng(77);
  Matrix a = Matrix::RandomNormal(64, 128, rng);
  Matrix b = Matrix::RandomNormal(128, 32, rng);
  RunReport cold_r, warm_r;
  Matrix cold_c = RunMatMul(cold.plan, *cold.session, a, b, &cold_r);
  Matrix warm_c = RunMatMul(cold.plan, warm, a, b, &warm_r);

  EXPECT_EQ(std::memcmp(cold_c.data(), warm_c.data(),
                        cold_c.size() * sizeof(float)),
            0);
  EXPECT_EQ(cold_r.ToJson(), warm_r.ToJson());
}

TEST(ExecutableRoundTrip, LedgersAndCountsSurviveByteForByte) {
  // The fig5/fig7 quantities -- per-tile ledgers, graph counts, category
  // bytes -- must read identically off a loaded artifact.
  CompiledMatMul cold = MakeMatMul();
  const Executable& exe = cold.session->executable();
  StatusOr<Executable> loaded = Executable::Deserialize(exe.Serialize());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  EXPECT_EQ(CountsOf(exe).ToJson(), CountsOf(loaded.value()).ToJson());
  // MemoryReport prints per-pass wall clock, which is intentionally not in
  // the artifact (loads as 0); mask it before comparing the ledgers.
  auto mask_ms = [](std::string s) {
    for (std::size_t open = s.find('('); open != std::string::npos;
         open = s.find('(', open + 1)) {
      const std::size_t close = s.find(" ms)", open);
      if (close != std::string::npos) s.replace(open, close - open + 4, "(ms)");
    }
    return s;
  };
  EXPECT_EQ(mask_ms(MemoryReport(exe)), mask_ms(MemoryReport(loaded.value())));
  ASSERT_EQ(exe.tiles.size(), loaded.value().tiles.size());
  for (std::size_t t = 0; t < exe.tiles.size(); ++t) {
    EXPECT_EQ(exe.tiles[t].bytes, loaded.value().tiles[t].bytes) << t;
  }
  ASSERT_EQ(exe.cs_exchange.size(), loaded.value().cs_exchange.size());
  for (std::size_t i = 0; i < exe.cs_exchange.size(); ++i) {
    EXPECT_EQ(exe.cs_exchange[i].total_bytes,
              loaded.value().cs_exchange[i].total_bytes);
    EXPECT_EQ(exe.cs_exchange[i].max_tile_incoming,
              loaded.value().cs_exchange[i].max_tile_incoming);
  }
}

TEST(ExecutableRoundTrip, ServingLogitsBitwiseIdenticalThroughDiskCache) {
  // The serving path: cold-compile a plan, and build the same plan in a
  // second cache instance that can only get the artifact from disk. Logits
  // must match bit for bit.
  core::ShlShape shape;
  shape.input = 64;
  shape.hidden = 64;
  shape.pixelfly = core::ScaledPixelflyConfig(64);
  Rng rng(7);
  nn::Sequential model = nn::BuildShl(core::Method::kButterfly, shape, rng);
  nn::ForwardSpec spec = nn::ExportForward(model);

  const std::string dir = TempPath("exe_cache_dir");
  std::filesystem::remove_all(dir);  // clean slate across test reruns
  serve::PlanOptions opts{.max_batch = 4};
  auto cold = serve::ModelPlan::Build(spec, Gc200(), opts);
  ASSERT_TRUE(cold.ok()) << cold.status().message();

  ExeCache writer(dir);
  opts.cache = &writer;
  ASSERT_TRUE(serve::ModelPlan::Build(spec, Gc200(), opts).ok());
  EXPECT_EQ(writer.stats().disk_stores, 1u);

  ExeCache reader(dir);  // fresh cache: memory empty, must load from disk
  opts.cache = &reader;
  auto warm = serve::ModelPlan::Build(spec, Gc200(), opts);
  ASSERT_TRUE(warm.ok()) << warm.status().message();
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  EXPECT_EQ(reader.stats().misses, 0u);

  Matrix inputs(3, 64);
  Rng drng(11);
  for (std::size_t i = 0; i < inputs.rows(); ++i) {
    for (std::size_t j = 0; j < inputs.cols(); ++j) {
      inputs(i, j) = float(drng.Uniform(-1.0, 1.0));
    }
  }
  auto cold_engine = cold.value()->MakeReplica();
  auto warm_engine = warm.value()->MakeReplica();
  Matrix cold_logits = cold.value()->RunBatch(*cold_engine, inputs);
  Matrix warm_logits = warm.value()->RunBatch(*warm_engine, inputs);
  ASSERT_EQ(cold_logits.rows(), warm_logits.rows());
  ASSERT_EQ(cold_logits.cols(), warm_logits.cols());
  EXPECT_EQ(std::memcmp(cold_logits.data(), warm_logits.data(),
                        cold_logits.size() * sizeof(float)),
            0);
  EXPECT_DOUBLE_EQ(cold.value()->batchSeconds(), warm.value()->batchSeconds());
}

TEST(ExecutableRejects, MissingShortAndCorruptFilesReturnCleanStatus) {
  EXPECT_FALSE(Executable::Load(TempPath("no_such_file.ipuexe")).ok());

  CompiledMatMul c = MakeMatMul();
  const std::vector<std::uint8_t> bytes = c.session->executable().Serialize();

  // Truncated at every interesting boundary: never a crash, always a status.
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, std::size_t{11},
                          std::size_t{12}, bytes.size() / 2,
                          bytes.size() - 1}) {
    StatusOr<Executable> r = Executable::Deserialize(
        std::span<const std::uint8_t>(bytes.data(), cut));
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
    EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
  }

  // Trailing garbage after a valid artifact.
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0xab);
  EXPECT_FALSE(Executable::Deserialize(padded).ok());

  // Wrong magic.
  std::vector<std::uint8_t> not_ours = bytes;
  not_ours[0] = 'X';
  StatusOr<Executable> nm = Executable::Deserialize(not_ours);
  ASSERT_FALSE(nm.ok());
  EXPECT_NE(nm.status().message().find("not an ipu::Executable"),
            std::string::npos);

  // Mid-file corruption lands in raw IEEE-754 payload that would otherwise
  // parse as valid floats; the trailing checksum is what catches it.
  std::vector<std::uint8_t> corrupt = bytes;
  std::fill(corrupt.begin() + corrupt.size() / 2,
            corrupt.begin() + corrupt.size() / 2 + 8, 0xff);
  StatusOr<Executable> cr = Executable::Deserialize(corrupt);
  ASSERT_FALSE(cr.ok());
  EXPECT_NE(cr.status().message().find("checksum"), std::string::npos);

  // Short file on disk through Load().
  const std::string path = TempPath("short.ipuexe");
  std::ofstream(path, std::ios::binary)
      .write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size() / 3));
  EXPECT_FALSE(Executable::Load(path).ok());
}

TEST(ExecutableRejects, VersionMismatchNamesBothVersions) {
  CompiledMatMul c = MakeMatMul();
  std::vector<std::uint8_t> bytes = c.session->executable().Serialize();
  // Version is the little-endian u32 right after the 8-byte magic.
  bytes[8] = 99;
  StatusOr<Executable> r = Executable::Deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
  EXPECT_NE(r.status().message().find("99"), std::string::npos);
}

TEST(ExeCacheTest, KeyDependsOnGraphProgramAndFlags) {
  Graph g1(Gc200());
  Tensor a = g1.addVariable("a", 64);
  Tensor b = g1.addVariable("b", 64);
  g1.setTileMapping(a, 0);
  g1.setTileMapping(b, 3);

  const CompileOptions base;
  const std::uint64_t k1 = ExeCache::KeyOf(g1, Program::Copy(a, b), base);
  EXPECT_EQ(k1, ExeCache::KeyOf(g1, Program::Copy(a, b), base));
  EXPECT_NE(k1, ExeCache::KeyOf(g1, Program::Copy(b, a), base));

  CompileOptions unfused = base;
  unfused.fuse_compute_sets = false;
  EXPECT_NE(k1, ExeCache::KeyOf(g1, Program::Copy(a, b), unfused));

  // Trace options never change the artifact, so they must not change the key.
  CompileOptions traced = base;
  traced.trace_label = "something";
  traced.trace_pid = 42;
  EXPECT_EQ(k1, ExeCache::KeyOf(g1, Program::Copy(a, b), traced));

  // A different tile mapping (the tile-slice axis) changes the key.
  Graph g2(Gc200());
  Tensor a2 = g2.addVariable("a", 64);
  Tensor b2 = g2.addVariable("b", 64);
  g2.setTileMapping(a2, 0);
  g2.setTileMapping(b2, 4);
  EXPECT_NE(k1, ExeCache::KeyOf(g2, Program::Copy(a2, b2), base));
}

TEST(ExeCacheTest, SessionsShareOneCompileThroughTheCache) {
  ExeCache cache;  // in-memory only
  auto make = [&]() {
    Session s(Gc200(), SessionOptions{.cache = &cache});
    auto plan = BuildMatMul(s.graph(), 32, 64, 16, MatMulImpl::kPoplin);
    EXPECT_TRUE(plan.ok());
    EXPECT_TRUE(s.compile(plan.value().prog).ok());
    return s.run().ToJson();
  };
  const std::string r1 = make();
  const std::string r2 = make();
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().memory_hits, 1u);
  EXPECT_EQ(cache.stats().disk_stores, 0u);
}

TEST(ExeCacheTest, ConcurrentWritersNeverPublishATornArtifact) {
  // Two cache instances over one directory model two processes racing to
  // store the same key. Each writer saves through its own unique temp file
  // and publishes with an atomic rename, so whatever lands on disk must
  // always pass the trailing-checksum validation on load -- a shared ".tmp"
  // name would let the writers interleave and rename a torn file into
  // place. Repeat the race with loads mixed in to shake out interleavings.
  const std::string dir = TempPath("exe_cache_two_writers");
  std::filesystem::remove_all(dir);
  for (int round = 0; round < 4; ++round) {
    std::filesystem::remove_all(dir);
    ExeCache writer_a(dir);
    ExeCache writer_b(dir);
    ExeCache* writers[2] = {&writer_a, &writer_b};
    std::vector<std::string> reports(8);
    ParallelForWith(8, 0, 8, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        Session s(Gc200(), SessionOptions{.cache = writers[i % 2]});
        auto plan = BuildMatMul(s.graph(), 32, 64, 16, MatMulImpl::kPoplin);
        EXPECT_TRUE(plan.ok());
        EXPECT_TRUE(s.compile(plan.value().prog).ok());
        reports[i] = s.run().ToJson();
      }
    });
    for (std::size_t i = 1; i < reports.size(); ++i)
      EXPECT_EQ(reports[i], reports[0]);

    // Whatever the race left behind must be a complete, valid artifact
    // (and nothing else -- no stray temp files survive the publish).
    std::size_t artifacts = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
      StatusOr<Executable> loaded = Executable::Load(entry.path().string());
      EXPECT_TRUE(loaded.ok()) << name << ": " << loaded.status().message();
      ++artifacts;
    }
    EXPECT_EQ(artifacts, 1u);

    // A third, cold cache must be able to serve the artifact from disk.
    ExeCache reader(dir);
    Session s(Gc200(), SessionOptions{.cache = &reader});
    auto plan = BuildMatMul(s.graph(), 32, 64, 16, MatMulImpl::kPoplin);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(s.compile(plan.value().prog).ok());
    EXPECT_EQ(s.run().ToJson(), reports[0]);
    EXPECT_EQ(reader.stats().disk_hits, 1u);
    EXPECT_EQ(reader.stats().misses, 0u);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace repro::ipu
