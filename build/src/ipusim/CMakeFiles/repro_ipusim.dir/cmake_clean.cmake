file(REMOVE_RECURSE
  "CMakeFiles/repro_ipusim.dir/codelet.cpp.o"
  "CMakeFiles/repro_ipusim.dir/codelet.cpp.o.d"
  "CMakeFiles/repro_ipusim.dir/compiler.cpp.o"
  "CMakeFiles/repro_ipusim.dir/compiler.cpp.o.d"
  "CMakeFiles/repro_ipusim.dir/engine.cpp.o"
  "CMakeFiles/repro_ipusim.dir/engine.cpp.o.d"
  "CMakeFiles/repro_ipusim.dir/graph.cpp.o"
  "CMakeFiles/repro_ipusim.dir/graph.cpp.o.d"
  "CMakeFiles/repro_ipusim.dir/matmul.cpp.o"
  "CMakeFiles/repro_ipusim.dir/matmul.cpp.o.d"
  "CMakeFiles/repro_ipusim.dir/multi_ipu.cpp.o"
  "CMakeFiles/repro_ipusim.dir/multi_ipu.cpp.o.d"
  "CMakeFiles/repro_ipusim.dir/profiler.cpp.o"
  "CMakeFiles/repro_ipusim.dir/profiler.cpp.o.d"
  "CMakeFiles/repro_ipusim.dir/sparse_mm.cpp.o"
  "CMakeFiles/repro_ipusim.dir/sparse_mm.cpp.o.d"
  "librepro_ipusim.a"
  "librepro_ipusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_ipusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
