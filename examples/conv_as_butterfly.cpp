// Convolution as a butterfly sandwich.
//
// The paper's introduction claims every structured linear transform --
// including convolutional layers -- decomposes into butterfly factors. This
// example makes that concrete for circular convolution: the circulant
// matrix diagonalises in the Fourier basis,
//
//     circ(c) = F^-1 diag(F c) F,
//
// and F (the DFT) *is* a product of log N butterfly factors (paper eq. 1).
// So a convolution layer is literally butterfly -> diagonal -> butterfly:
// O(N log N) compute and O(N) parameters, no dense matrix anywhere.
//
//   $ ./conv_as_butterfly [--n 64]
#include <complex>
#include <cstdio>
#include <vector>

#include "core/fft.h"
#include "linalg/gemm.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace repro;
  using core::Cpx;
  Cli cli(argc, argv);
  const std::size_t n = cli.GetInt("n", 64);

  Rng rng(5);
  std::vector<float> kernel(n), x(n);
  rng.FillNormal(kernel.data(), n, 1.0f);
  rng.FillNormal(x.data(), n, 1.0f);

  // Reference: direct multiplication by the dense circulant matrix.
  std::vector<float> direct(n);
  core::CircularConvolve(kernel, x, direct);

  // Butterfly path: y = IDFT( DFT(c) .* DFT(x) ), with DFT applied as the
  // product of butterfly factors from core::ComplexButterfly::Dft.
  auto butterfly_dft = core::ComplexButterfly::Dft(n);
  std::vector<Cpx> fc(n), fx(n);
  for (std::size_t i = 0; i < n; ++i) {
    fc[i] = Cpx(kernel[i], 0.0);
    fx[i] = Cpx(x[i], 0.0);
  }
  auto spec_c = butterfly_dft.Apply(fc);  // butterfly #1 (on the kernel)
  auto spec_x = butterfly_dft.Apply(fx);  // butterfly #1 (on the signal)
  for (std::size_t i = 0; i < n; ++i) spec_x[i] *= spec_c[i];  // diagonal
  // IDFT via the same butterfly: conj -> DFT -> conj, scaled by 1/n.
  for (auto& v : spec_x) v = std::conj(v);
  auto y = butterfly_dft.Apply(spec_x);  // butterfly #2
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double yi = std::conj(y[i]).real() / static_cast<double>(n);
    max_err = std::max(max_err, std::abs(yi - direct[i]));
  }

  std::printf(
      "circular convolution of length %zu\n"
      "  dense circulant matrix:        %zu parameters, %zu MACs\n"
      "  butterfly-diag-butterfly path: %zu parameters, ~%zu MACs\n"
      "  max |difference| between the two paths: %.2e\n",
      n, n * n, n * n, n,
      2 * n * butterfly_dft.numFactors() + n, max_err);
  std::printf(
      "\nThe butterfly factors here are *fixed* (DFT twiddles). The paper's\n"
      "point is that making them learnable subsumes this construction: a\n"
      "butterfly layer can discover convolution -- or any fast transform --\n"
      "instead of having it hand-implemented per platform.\n");
  return max_err < 1e-4 ? 0 : 1;
}
