// Serving quick-start: from a trained model to a replicated inference
// service in four steps.
//
//   1. build + (briefly) train the butterfly SHL model on synthetic data;
//   2. ExportForward -> ModelPlan::Build: the forward pass is lowered and
//      compiled into one ipu::Session, exactly once;
//   3. ReplicaPool: K engines share that executable, each with its own
//      weight/activation storage;
//   4. Server: closed-loop clients stream requests through the bounded
//      queue -> micro-batcher -> replica pool, and every request's logits
//      are checked against the host forward pass at the end.
//
//   $ ./serve_demo [--n 64] [--replicas 3] [--requests 600] [--trace t.json]
//
// --trace writes a Chrome trace (open in https://ui.perfetto.dev) with the
// compile passes, the calibration run's BSP timeline, and every request's
// queue/device spans -- all on simulated time, so the file is byte-identical
// across runs and host thread counts.
#include <cmath>
#include <cstdio>
#include <string>

#include "core/device_time.h"
#include "core/method.h"
#include "ipusim/arch.h"
#include "ipusim/exe_cache.h"
#include "nn/export.h"
#include "nn/model.h"
#include "obs/trace.h"
#include "serve/model_plan.h"
#include "serve/replica_pool.h"
#include "serve/server.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace repro;
  Cli cli(argc, argv);
  const std::size_t n = cli.GetInt("n", 64);
  const std::size_t replicas = cli.GetInt("replicas", 3);
  const std::size_t requests = cli.GetInt("requests", 600);
  const std::size_t max_batch = 8;
  const std::string trace_path = cli.GetString("trace", "");
  // --cache-dir warm-starts the plan compile from a previous run's artifact
  // (shared with bench_serving: same content hash, same .ipuexe file).
  const std::string cache_dir = cli.GetString("cache-dir", "");
  obs::Tracer tracer;
  obs::Tracer* const tp = trace_path.empty() ? nullptr : &tracer;
  ipu::ExeCache cache(cache_dir);

  // 1. A small butterfly SHL model (random init stands in for training;
  //    serving only cares that host and device agree on the weights).
  core::ShlShape shape;
  shape.input = n;
  shape.hidden = n;
  shape.pixelfly = core::ScaledPixelflyConfig(n);
  Rng rng(7);
  nn::Sequential model = nn::BuildShl(core::Method::kButterfly, shape, rng);

  // 2. Export the forward pass and compile it once.
  nn::ForwardSpec spec = nn::ExportForward(model);
  auto plan = serve::ModelPlan::Build(
      spec, ipu::Gc200(),
      serve::PlanOptions{.max_batch = max_batch,
                         .tracer = tp,
                         .trace_pid = 1,
                         .trace_label = "plan:butterfly",
                         .cache = &cache});
  REPRO_REQUIRE(plan.ok(), "plan: %s", plan.status().message().c_str());
  const ipu::ExeCacheStats cs = cache.stats();
  std::printf("%s butterfly forward (n = %zu, %zu params) once; "
              "batch service time %.1f us\n",
              cs.disk_hits > 0 ? "loaded cached" : "compiled", n,
              spec.paramCount(), plan.value()->batchSeconds() * 1e6);

  // 3. K replicas over the one executable.
  serve::ReplicaPool pool(*plan.value(), replicas);

  // 4. Serve a closed loop of clients with real request features.
  Matrix inputs(64, n);
  Rng data_rng(11);
  for (std::size_t i = 0; i < inputs.rows(); ++i)
    for (std::size_t j = 0; j < inputs.cols(); ++j)
      inputs(i, j) = float(data_rng.Uniform(-1.0, 1.0));

  serve::ServerConfig cfg;
  cfg.batch = serve::BatchPolicy{.max_batch = max_batch,
                                 .max_delay_s = 100e-6};
  cfg.queue_capacity = replicas * max_batch;
  cfg.tracer = tp;
  cfg.trace_pid = 2;
  cfg.trace_label = "serve:butterfly";
  serve::Server server(pool, cfg);
  serve::ServeResult res = server.RunClosedLoop(
      serve::ClosedLoopLoad{.clients = replicas * max_batch,
                            .requests = requests,
                            .think_s = 0.0},
      &inputs);

  std::printf("\nmetrics: %s\n", res.metrics.ToJson().c_str());

  // Spot-check the served logits against the host forward pass.
  float max_diff = 0.0f;
  for (std::size_t id = 0; id < requests; ++id) {
    Matrix x(1, n);
    auto src = inputs.row(id % inputs.rows());
    std::copy(src.begin(), src.end(), x.row(0).begin());
    const Matrix& host = model.Forward(x, /*train=*/false);
    for (std::size_t j = 0; j < host.cols(); ++j)
      max_diff = std::max(max_diff,
                          std::abs(host(0, j) - res.logits(id, j)));
  }
  std::printf("\nserved %zu requests at %.0f QPS (p99 %.1f us); "
              "max |device - host| logit diff = %.2e\n",
              res.metrics.completed(), res.metrics.qps(),
              res.metrics.LatencyPercentile(99.0) * 1e6, max_diff);
  REPRO_REQUIRE(max_diff < 1e-3f, "served logits diverge from host forward");
  if (tp != nullptr) {
    const Status ws = tracer.WriteFile(trace_path);
    REPRO_REQUIRE(ws.ok(), "writing trace %s: %s", trace_path.c_str(),
                  ws.message().c_str());
    std::printf("\ntrace: %s (load in https://ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  return 0;
}
