// Exchange explorer: probe the simulated IPU-Exchange the way the paper's
// Section 3.1 does -- copy buffers between arbitrary tile pairs and watch
// latency/bandwidth depend on size but not distance (Observation 1).
//
//   $ ./exchange_explorer [--src 0] [--dst 644] [--max_kb 256]
#include <cstdio>

#include "ipusim/graph.h"
#include "ipusim/program.h"
#include "ipusim/session.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace repro;
  using namespace repro::ipu;
  Cli cli(argc, argv);
  const std::size_t src = cli.GetInt("src", 0);
  const std::size_t dst = cli.GetInt("dst", 644);
  const std::size_t max_kb = cli.GetInt("max_kb", 256);
  const IpuArch arch = Gc200();

  std::printf("IPU-Exchange probe: tile %zu -> tile %zu (of %zu tiles)\n\n",
              src, dst, arch.num_tiles);
  std::printf("%12s %14s %14s\n", "size", "latency [us]", "bandwidth [GB/s]");
  for (std::size_t bytes = 8; bytes <= max_kb * 1024; bytes *= 2) {
    Session session(arch, SessionOptions{.execute = false});
    Graph& g = session.graph();
    const std::size_t elems = bytes / sizeof(float);
    Tensor a = g.addVariable("a", elems);
    Tensor b = g.addVariable("b", elems);
    g.setTileMapping(a, src);
    g.setTileMapping(b, dst);
    if (Status s = session.compile(Program::Copy(a, b)); !s.ok()) {
      std::printf("%12zu  does not fit: %s\n", bytes, s.message().c_str());
      continue;
    }
    const double seconds = session.run().seconds(arch);
    std::printf("%12zu %14.3f %14.2f\n", bytes, seconds * 1e6,
                static_cast<double>(bytes) / seconds / 1e9);
  }
  std::printf(
      "\nTry different --dst values: the numbers do not change. On this\n"
      "architecture data locality between tiles does not matter, only fit.\n");
  return 0;
}
