// Exchange explorer: probe the simulated IPU-Exchange the way the paper's
// Section 3.1 does -- copy buffers between arbitrary tile pairs and watch
// latency/bandwidth depend on size but not distance (Observation 1).
//
//   $ ./exchange_explorer [--src 0] [--dst 644] [--max_kb 256]
#include <cstdio>

#include "ipusim/engine.h"
#include "ipusim/graph.h"
#include "ipusim/program.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace repro;
  using namespace repro::ipu;
  Cli cli(argc, argv);
  const std::size_t src = cli.GetInt("src", 0);
  const std::size_t dst = cli.GetInt("dst", 644);
  const std::size_t max_kb = cli.GetInt("max_kb", 256);
  const IpuArch arch = Gc200();

  std::printf("IPU-Exchange probe: tile %zu -> tile %zu (of %zu tiles)\n\n",
              src, dst, arch.num_tiles);
  std::printf("%12s %14s %14s\n", "size", "latency [us]", "bandwidth [GB/s]");
  for (std::size_t bytes = 8; bytes <= max_kb * 1024; bytes *= 2) {
    Graph g(arch);
    const std::size_t elems = bytes / sizeof(float);
    Tensor a = g.addVariable("a", elems);
    Tensor b = g.addVariable("b", elems);
    g.setTileMapping(a, src);
    g.setTileMapping(b, dst);
    auto exe = Compile(g, Program::Copy(a, b));
    if (!exe.ok()) {
      std::printf("%12zu  does not fit: %s\n", bytes,
                  exe.status().message().c_str());
      continue;
    }
    Engine e(g, exe.take(),
             EngineOptions{.execute = false, .fast_repeat = true});
    const double seconds = e.run().seconds(arch);
    std::printf("%12zu %14.3f %14.2f\n", bytes, seconds * 1e6,
                static_cast<double>(bytes) / seconds / 1e9);
  }
  std::printf(
      "\nTry different --dst values: the numbers do not change. On this\n"
      "architecture data locality between tiles does not matter, only fit.\n");
  return 0;
}
