// Streaming-I/O quick-start: the double-buffered host FIFO path end to end.
//
//   1. Host SGD over synthetic CIFAR arriving in chunks: each chunk is
//      generated (streamed ingest), trained on once, and dropped -- the
//      dataset never exists in memory all at once.
//   2. Device-side streamed train-step loop: Repeat(steps, StreamIn(x) ->
//      butterfly stages -> StreamOut(y)) against the same loop over
//      synchronous HostWrite/HostRead. The engine's RunReport shows how
//      much host-link time the FIFOs hide behind compute
//      (overlapped_host_seconds) and the resulting speedup.
//   3. Checkpoint: the trained model's streaming serving plan saved as an
//      ipu::Executable artifact, reloaded, byte-compared against the live
//      executable, and replayed on a fresh replica for logit parity.
//
//   $ ./train_stream [--side 16] [--chunks 4] [--chunk-samples 400]
//                    [--steps 64] [--checkpoint ckpt.ipuexe]
#include <cmath>
#include <cstdio>
#include <string>

#include "core/ipu_lowering.h"
#include "core/method.h"
#include "data/synthetic.h"
#include "ipusim/arch.h"
#include "ipusim/executable.h"
#include "ipusim/session.h"
#include "nn/export.h"
#include "nn/trainer.h"
#include "serve/model_plan.h"
#include "util/cli.h"

using namespace repro;
using ipu::Program;

namespace {

// One Repeat'd butterfly train-step loop, bracketed by either the
// double-buffered stream FIFOs or the synchronous host copies. Timing-only:
// the cycle model is data-independent, so the comparison needs no numerics.
ipu::RunReport TimeStepLoop(const ipu::IpuArch& arch, std::size_t n,
                            std::size_t batch, std::size_t steps,
                            bool streaming) {
  ipu::Session session(arch, ipu::SessionOptions{.execute = false});
  ipu::Graph& g = session.graph();
  const double cpm = core::ButterflyCyclesPerMac(n);

  ipu::Tensor x = g.addVariable("x", n, batch);
  g.mapLinearly(x, batch);
  Program body = Program::Sequence({});
  body.add(streaming ? Program::StreamIn(x) : Program::HostWrite(x));
  ipu::Tensor cur = x;
  std::size_t factors = 0;
  for (std::size_t m = n; m > 1; m >>= 1) ++factors;
  for (std::size_t f = 0; f < factors; ++f) {
    ipu::Tensor w = g.addVariable("w" + std::to_string(f), n / 2, 4);
    g.mapLinearly(w, 4);
    // Fresh staging tensor per stage (the unfused framework form); it also
    // keeps the StreamOut source disjoint from the StreamIn destination,
    // which the compiler's stream-validation pass requires.
    ipu::Tensor staged = g.addVariable("stage" + std::to_string(f), n, batch);
    if (f % 2 == 0) {
      core::MapRowsOffset(g, staged, n);
    } else {
      g.mapLinearly(staged, batch);
    }
    body.add(Program::Copy(cur, staged));
    cur = staged;
    ipu::ComputeSetId cs =
        core::AddPairStage(g, cur, n, batch, std::size_t{1} << f,
                           ipu::codelets::kButterfly2x2, &w, cpm);
    body.add(Program::Execute(cs));
  }
  body.add(streaming ? Program::StreamOut(cur) : Program::HostRead(cur));

  const Status cs = session.compile(Program::Repeat(steps, std::move(body)));
  REPRO_REQUIRE(cs.ok(), "step-loop compile: %s", cs.message().c_str());
  return session.run();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t side = cli.GetInt("side", 16);
  const std::size_t n = side * side;
  const std::size_t chunks = cli.GetInt("chunks", 4);
  const std::size_t chunk_samples = cli.GetInt("chunk-samples", 400);
  const std::size_t steps = cli.GetInt("steps", 64);
  const std::string ckpt =
      cli.GetString("checkpoint", "train_stream_ckpt.ipuexe");
  const ipu::IpuArch arch = ipu::Gc200();

  // 1. Chunked host training: the data stream is consumed chunk by chunk.
  data::SyntheticConfig dcfg;
  dcfg.image_side = side;
  dcfg.num_samples = 1000;
  dcfg.sample_seed = 99;
  data::Dataset test = data::SyntheticCifar10(dcfg);

  Rng rng(cli.GetInt("seed", 42));
  core::ShlShape shape;
  shape.input = n;
  shape.hidden = n;
  shape.pixelfly = core::ScaledPixelflyConfig(n);
  nn::Sequential model = nn::BuildShl(core::Method::kButterfly, shape, rng);
  std::printf("SHL(%zu -> %zu -> %zu) butterfly, %zu parameters; training on "
              "%zu streamed chunks of %zu samples\n",
              shape.input, shape.hidden, shape.classes, model.paramCount(),
              chunks, chunk_samples);

  nn::TrainConfig tcfg;
  tcfg.epochs = 1;
  for (std::size_t c = 0; c < chunks; ++c) {
    dcfg.num_samples = chunk_samples;
    dcfg.sample_seed = 1 + c;  // each chunk draws fresh samples, then drops
    data::Dataset chunk = data::SyntheticCifar10(dcfg);
    data::StandardizeTogether(chunk, {});
    nn::TrainResult res = nn::Train(model, chunk, test, tcfg);
    std::printf("  chunk %zu/%zu: train loss %.3f, test accuracy %.1f%%\n",
                c + 1, chunks, res.final_train_loss, res.test_accuracy);
  }

  // 2. Streamed vs copied device step loop on the simulated clock.
  const std::size_t batch = cli.GetInt("batch", 32);
  const ipu::RunReport stream = TimeStepLoop(arch, n, batch, steps, true);
  const ipu::RunReport copy = TimeStepLoop(arch, n, batch, steps, false);
  const double s_s = stream.seconds(arch);
  const double c_s = copy.seconds(arch);
  const double link = stream.host_seconds + stream.overlapped_host_seconds;
  std::printf(
      "\ndevice step loop (%zu steps, batch %zu):\n"
      "  host copies : %8.1f us (%.1f us on the host link, all stalled)\n"
      "  stream FIFOs: %8.1f us (%.1f us link time, %.1f us hidden behind "
      "compute = %.0f%%)\n"
      "  speedup: %.2fx\n",
      steps, batch, c_s * 1e6, copy.host_seconds * 1e6, s_s * 1e6, link * 1e6,
      stream.overlapped_host_seconds * 1e6,
      link > 0.0 ? 100.0 * stream.overlapped_host_seconds / link : 0.0,
      c_s / s_s);
  REPRO_REQUIRE(stream.overlapped_host_seconds > 0.0,
                "streaming loop hid no host-link time");
  REPRO_REQUIRE(s_s < c_s, "streaming loop not faster than host copies");

  // 3. Checkpoint the trained model's streaming serving plan and round-trip.
  nn::ForwardSpec spec = nn::ExportForward(model);
  auto plan = serve::ModelPlan::Build(
      spec, arch, serve::PlanOptions{.max_batch = 8});
  REPRO_REQUIRE(plan.ok(), "plan: %s", plan.status().message().c_str());
  const Status saved = plan.value()->SaveExecutable(ckpt);
  REPRO_REQUIRE(saved.ok(), "save: %s", saved.message().c_str());
  StatusOr<ipu::Executable> loaded = ipu::Executable::Load(ckpt);
  REPRO_REQUIRE(loaded.ok(), "reload: %s", loaded.status().message().c_str());
  REPRO_REQUIRE(loaded.value().Serialize() ==
                    plan.value()->executable().Serialize(),
                "checkpoint bytes differ from the live executable");

  auto replica = plan.value()->MakeReplica();
  Matrix xb(4, n);
  Rng data_rng(11);
  for (std::size_t i = 0; i < xb.rows(); ++i)
    for (std::size_t j = 0; j < xb.cols(); ++j)
      xb(i, j) = float(data_rng.Uniform(-1.0, 1.0));
  const Matrix logits = plan.value()->RunBatch(*replica, xb);
  const Matrix& host = model.Forward(xb, /*train=*/false);
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < xb.rows(); ++i)
    for (std::size_t j = 0; j < logits.cols(); ++j)
      max_diff = std::max(max_diff, std::abs(host(i, j) - logits(i, j)));
  REPRO_REQUIRE(max_diff < 1e-3f, "checkpointed plan logits diverge");
  std::printf("\ncheckpoint: %s round-trips byte-identical; replayed batch "
              "matches host forward (max diff %.2e)\n",
              ckpt.c_str(), max_diff);
  return 0;
}
