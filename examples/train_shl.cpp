// End-to-end SHL training (the paper's Section 4.2 workload) with any of
// the six hidden-layer methods, on the synthetic CIFAR-10 stand-in, with
// simulated device time for all three device configurations.
//
//   $ ./train_shl --method butterfly --epochs 6 --samples 3000 --lr 0.001
//   methods: baseline butterfly fastfood circulant lowrank pixelfly
#include <cstdio>
#include <string>

#include "core/device_time.h"
#include "data/synthetic.h"
#include "nn/trainer.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace repro;
  Cli cli(argc, argv);
  const std::string name = cli.GetString("method", "butterfly");
  core::Method method = core::Method::kButterfly;
  if (name == "baseline") method = core::Method::kBaseline;
  else if (name == "butterfly") method = core::Method::kButterfly;
  else if (name == "fastfood") method = core::Method::kFastfood;
  else if (name == "circulant") method = core::Method::kCirculant;
  else if (name == "lowrank") method = core::Method::kLowRank;
  else if (name == "pixelfly") method = core::Method::kPixelfly;
  else {
    std::fprintf(stderr, "unknown --method '%s'\n", name.c_str());
    return 1;
  }

  data::SyntheticConfig dcfg;
  dcfg.num_samples = cli.GetInt("samples", 3000);
  data::Dataset train = data::SyntheticCifar10(dcfg);
  dcfg.sample_seed = 99;
  dcfg.num_samples = 1000;
  data::Dataset test = data::SyntheticCifar10(dcfg);
  data::StandardizeTogether(train, {&test});

  nn::TrainConfig tcfg;
  tcfg.epochs = cli.GetInt("epochs", 6);
  tcfg.lr = cli.GetDouble("lr", 0.001);

  Rng rng(cli.GetInt("seed", 42));
  core::ShlShape shape;
  nn::Sequential model = nn::BuildShl(method, shape, rng);
  std::printf("SHL(%zu -> %zu -> %zu) with %s hidden layer: %zu parameters\n",
              shape.input, shape.hidden, shape.classes,
              core::MethodName(method), model.paramCount());

  nn::TrainResult res = nn::Train(model, train, test, tcfg);
  std::printf("trained %zu steps (%zu epochs)\n", res.steps, tcfg.epochs);
  for (std::size_t e = 0; e < res.epoch_val_accuracy.size(); ++e) {
    std::printf("  epoch %2zu: val accuracy %.1f%%\n", e + 1,
                res.epoch_val_accuracy[e]);
  }
  std::printf("test accuracy: %.2f%%  (final train loss %.3f)\n",
              res.test_accuracy, res.final_train_loss);

  std::printf("\nsimulated training time for these %zu steps:\n", res.steps);
  for (core::Device d : core::kAllDevices) {
    const core::MethodTime t = core::TrainStepSeconds(d, method, shape);
    std::printf("  %-10s %.2f s%s\n", core::DeviceName(d),
                t.seconds * static_cast<double>(res.steps),
                t.streamed ? " (streaming memory)" : "");
  }
  return 0;
}
