// FFT as a butterfly: demonstrates the paper's equations (1)-(3) concretely.
//
// 1. Builds the complex butterfly factors whose product is the DFT matrix
//    (D1 = D3 = I, D2 = Omega, D4 = -Omega) and verifies it against a naive
//    O(N^2) DFT.
// 2. Shows a *learnable* real butterfly recovering a fast transform: it is
//    initialised randomly and fitted by gradient descent to the Hadamard
//    transform, reaching machine-precision with only 2N log N parameters.
//
//   $ ./fft_compression [--n 64]
#include <cmath>
#include <cstdio>

#include "core/butterfly.h"
#include "core/fft.h"
#include "core/fwht.h"
#include "linalg/gemm.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace repro;
  Cli cli(argc, argv);
  const std::size_t n = cli.GetInt("n", 64);

  // --- Part 1: the DFT is a butterfly (paper eq. 1) -----------------------
  auto bf = core::ComplexButterfly::Dft(n);
  Rng rng(3);
  std::vector<core::Cpx> x(n);
  for (auto& c : x) c = core::Cpx(rng.Normal(), rng.Normal());
  auto via_butterfly = bf.Apply(x);
  auto reference = core::DftNaive(x);
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_err = std::max(max_err, std::abs(via_butterfly[i] - reference[i]));
  }
  std::printf(
      "DFT(%zu) via %zu butterfly factors + bit reversal: max error vs naive "
      "DFT = %.2e\n",
      n, bf.numFactors(), max_err);
  std::printf("  dense DFT matrix: %zu complex entries; butterfly: %zu\n", n * n,
              2 * n * bf.numFactors());

  // --- Part 2: learning a fast transform (paper Section 2.3) --------------
  core::Butterfly learn(n, core::ButterflyParam::kDense2x2,
                        /*with_permutation=*/false, rng);
  Matrix target = core::HadamardDense(n);
  Matrix basis = Matrix::Identity(n);
  Matrix out(n, n), grad(n, n), dx(n, n);
  const float lr = 0.05f;
  double loss = 0.0;
  for (int step = 0; step < 3000; ++step) {
    core::Butterfly::Workspace ws;
    learn.Forward(basis, out, &ws);
    // out = B^T; loss = ||B - H||_F^2 = ||out - H^T||_F^2.
    loss = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const float d = out.data()[i] - target.data()[i];  // H symmetric
      grad.data()[i] = 2.0f * d;
      loss += static_cast<double>(d) * d;
    }
    learn.zeroGrad();
    learn.Backward(ws, grad, dx);
    auto params = learn.params();
    auto grads = learn.grads();
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] -= lr * grads[i];
    }
    if (step % 500 == 0) {
      std::printf("  fit step %4d: ||B - H||_F^2 = %.6f\n", step, loss);
    }
  }
  std::printf(
      "learned the Hadamard transform to loss %.2e using %zu parameters "
      "(dense: %zu)\n",
      loss, learn.paramCount(), n * n);
  std::printf(
      "\nThis is the paper's premise: butterfly factors are universal building\n"
      "blocks for fast transforms, so a butterfly layer can *learn* the right\n"
      "transform instead of hand-implementing FFT/DCT/... per platform.\n");
  return 0;
}
