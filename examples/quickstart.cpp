// Quickstart: build a butterfly layer, run it on the IPU simulator, and see
// how much memory and time the factorization saves against a dense layer.
//
//   $ ./quickstart [--n 1024] [--batch 64]
#include <cstdio>

#include "core/butterfly.h"
#include "core/ipu_lowering.h"
#include "linalg/gemm.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace repro;
  Cli cli(argc, argv);
  const std::size_t n = cli.GetInt("n", 1024);
  const std::size_t batch = cli.GetInt("batch", 64);

  // 1. A learnable butterfly operator: log2(n) sparse factors instead of an
  //    n x n dense matrix.
  Rng rng(7);
  core::Butterfly butterfly(n, core::ButterflyParam::kDense2x2,
                            /*with_permutation=*/true, rng);
  std::printf("butterfly(%zu): %zu factors, %zu parameters (dense layer: %zu)\n",
              n, butterfly.numFactors(), butterfly.paramCount(), n * n);
  std::printf("compression: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(butterfly.paramCount()) /
                                 static_cast<double>(n * n)));

  // 2. Apply it to a batch (each row transformed in O(n log n)).
  Matrix x = Matrix::RandomNormal(batch, n, rng);
  Matrix y(batch, n);
  butterfly.Forward(x, y);
  std::printf("forward: ||x|| = %.2f -> ||y|| = %.2f (near-orthogonal init)\n",
              x.FrobeniusNorm(), y.FrobeniusNorm());

  // 3. Time the same layer on the simulated GC200 IPU vs a dense Linear.
  const ipu::IpuArch arch = ipu::Gc200();
  const core::IpuLayerTiming bf = core::TimeButterflyIpu(arch, batch, n);
  const core::IpuLayerTiming lin = core::TimeLinearIpu(arch, batch, n, n);
  std::printf(
      "\nsimulated GC200, batch %zu:\n"
      "  dense Linear : %8.2f us, %zu compute sets, %.1f MB graph memory\n"
      "  butterfly    : %8.2f us, %zu compute sets, %.1f MB graph memory\n",
      batch, lin.fwd_seconds * 1e6, lin.counts.compute_sets,
      static_cast<double>(lin.counts.total_bytes) / 1e6, bf.fwd_seconds * 1e6,
      bf.counts.compute_sets, static_cast<double>(bf.counts.total_bytes) / 1e6);
  std::printf(
      "\nThe butterfly needs %.1fx less parameter memory; at this size it runs "
      "%.2fx\n%s than the AMP-accelerated dense layer (see bench_fig6_layers "
      "for the sweep).\n",
      static_cast<double>(n * n) / butterfly.paramCount(),
      bf.fwd_seconds > lin.fwd_seconds ? bf.fwd_seconds / lin.fwd_seconds
                                       : lin.fwd_seconds / bf.fwd_seconds,
      bf.fwd_seconds > lin.fwd_seconds ? "slower" : "faster");
  return 0;
}
