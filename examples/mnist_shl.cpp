// MNIST experiment (paper Section 4.2, closing remarks): the paper also ran
// the SHL benchmark on MNIST and reports (a) trends consistent with
// CIFAR-10, (b) slight *accuracy improvements* for butterfly (a
// regularisation side effect), and (c) that pixelfly could not run at all
// because 784 is not a power of two.
//
// This example reproduces that story on the MNIST-like synthetic dataset:
// butterfly runs on inputs zero-padded to 1024, and the pixelfly
// power-of-two constraint is demonstrated explicitly.
#include <cstdio>

#include "core/pixelfly.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/structured.h"
#include "nn/trainer.h"
#include "util/bitops.h"
#include "util/cli.h"

using namespace repro;

namespace {

nn::Sequential BuildPadded(core::Method method, std::size_t padded,
                           std::size_t classes, Rng& rng) {
  nn::Sequential model;
  switch (method) {
    case core::Method::kBaseline:
      model.add(std::make_unique<nn::Linear>(padded, padded, rng));
      break;
    case core::Method::kButterfly:
      model.add(std::make_unique<nn::ButterflyLayer>(
          padded, core::ButterflyParam::kGivens, rng));
      break;
    case core::Method::kFastfood:
      model.add(std::make_unique<nn::FastfoodLayer>(padded, rng));
      break;
    default:
      REPRO_REQUIRE(false, "method not wired in this example");
  }
  model.add(std::make_unique<nn::Relu>(padded));
  model.add(std::make_unique<nn::Linear>(padded, classes, rng));
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t samples = cli.GetInt("samples", 2000);
  const std::size_t epochs = cli.GetInt("epochs", 4);

  data::Dataset train_raw = data::SyntheticMnist(samples, 11, 1);
  data::Dataset test_raw = data::SyntheticMnist(600, 11, 2);
  data::StandardizeTogether(train_raw, {&test_raw});

  std::printf("MNIST-like input: %zu features (28x28)\n", train_raw.dim());

  // 1. The pixelfly constraint the paper hit: 784 is not a power of two.
  if (!IsPow2(train_raw.dim())) {
    std::printf(
        "pixelfly requires power-of-two matrix sizes -> cannot run on %zu-dim "
        "MNIST\n(the paper reports exactly this).\n",
        train_raw.dim());
  }

  // 2. Butterfly (and friends) run on inputs padded to 1024.
  const std::size_t padded = NextPow2(train_raw.dim());
  data::Dataset train = data::PadFeatures(train_raw, padded);
  data::Dataset test = data::PadFeatures(test_raw, padded);
  std::printf("padding %zu -> %zu for the structured layers\n\n",
              train_raw.dim(), padded);

  nn::TrainConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.lr = cli.GetDouble("lr", 0.005);
  for (core::Method m : {core::Method::kBaseline, core::Method::kButterfly,
                         core::Method::kFastfood}) {
    Rng rng(42);
    nn::Sequential model = BuildPadded(m, padded, 10, rng);
    nn::TrainResult res = nn::Train(model, train, test, tcfg);
    std::printf("%-10s params=%8zu  test accuracy %.2f%%\n",
                core::MethodName(m), res.n_params, res.test_accuracy);
  }
  std::printf(
      "\nExpected shape (paper): trends match CIFAR-10; butterfly stays close "
      "to the\ndense baseline at ~65x fewer parameters.\n");
  return 0;
}
