#!/usr/bin/env bash
# Tier-1 verification plus bench JSON schema checks:
#   1. configure + build + ctest (the tier-1 gate from ROADMAP.md);
#   2. run every --json bench in --fast mode;
#   3. compare the set of JSON keys each bench emits against the checked-in
#      schema in scripts/bench_schemas/<bench>.keys. A missing or renamed key
#      fails the run; a new key fails too, so schema growth is an explicit,
#      reviewed change (update the .keys file in the same commit);
#   4. trace determinism: two bench_serving --trace runs at different host
#      thread counts must produce bitwise-identical Chrome trace JSON, and
#      that JSON's key set must match scripts/bench_schemas/trace_events.keys;
#   5. AddressSanitizer build of the concurrency-heavy tests (test_serve,
#      test_session, test_obs) in a side build dir.
#
# Usage: scripts/check.sh [build-dir]      (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
schema_dir="$repo_root/scripts/bench_schemas"

echo "== configure + build =="
cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j

echo "== tier-1 tests =="
ctest --test-dir "$build_dir" --output-on-failure -j

echo "== bench --json schemas =="
json_benches=(
  bench_fig3_exchange
  bench_fig4_skew
  bench_fig5_memusage
  bench_fig6_layers
  bench_fig7_computesets
  bench_table2_mm
  bench_table4_shl
  bench_table5_sweep
  bench_multi_ipu
  bench_serving
)
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT
failed=0
for bench in "${json_benches[@]}"; do
  out="$tmp_dir/$bench.json"
  "$build_dir/bench/$bench" --fast --json "$out" > "$tmp_dir/$bench.log"
  # The schema is the sorted set of distinct object keys in the output.
  grep -o '"[A-Za-z_][A-Za-z_0-9]*":' "$out" | sort -u > "$tmp_dir/$bench.keys"
  expected="$schema_dir/$bench.keys"
  if [[ ! -f "$expected" ]]; then
    echo "FAIL: $bench has no checked-in schema ($expected)"
    failed=1
  elif ! diff -u "$expected" "$tmp_dir/$bench.keys"; then
    echo "FAIL: $bench JSON keys changed (left: expected, right: actual)"
    failed=1
  else
    echo "ok: $bench"
  fi
done
if [[ "$failed" -ne 0 ]]; then
  echo "bench JSON schema check FAILED"
  exit 1
fi

echo "== trace determinism =="
# The tracer's contract: simulated-time timestamps only, so the trace bytes
# never depend on host parallelism (REPRO_THREADS or --host-threads).
t1="$tmp_dir/trace_t1.json"
t4="$tmp_dir/trace_t4.json"
REPRO_THREADS=1 "$build_dir/bench/bench_serving" --fast --requests 128 \
  --host-threads 1 --trace "$t1" > "$tmp_dir/trace_t1.log"
REPRO_THREADS=4 "$build_dir/bench/bench_serving" --fast --requests 128 \
  --host-threads 4 --trace "$t4" > "$tmp_dir/trace_t4.log"
if ! cmp -s "$t1" "$t4"; then
  echo "FAIL: trace JSON differs across host thread counts"
  exit 1
fi
grep -o '"[A-Za-z_][A-Za-z_0-9]*":' "$t1" | sort -u > "$tmp_dir/trace.keys"
if ! diff -u "$schema_dir/trace_events.keys" "$tmp_dir/trace.keys"; then
  echo "FAIL: trace JSON keys changed (left: expected, right: actual)"
  exit 1
fi
echo "ok: trace bitwise-identical across host threads, schema stable"

echo "== asan build (test_serve + test_session + test_obs) =="
asan_dir="$build_dir-asan"
cmake -B "$asan_dir" -S "$repo_root" -DREPRO_SANITIZE=address > /dev/null
cmake --build "$asan_dir" -j --target test_serve test_session test_obs
"$asan_dir/tests/test_serve" > "$tmp_dir/asan_serve.log" \
  || { echo "FAIL: asan test_serve"; tail -40 "$tmp_dir/asan_serve.log"; exit 1; }
"$asan_dir/tests/test_session" > "$tmp_dir/asan_session.log" \
  || { echo "FAIL: asan test_session"; tail -40 "$tmp_dir/asan_session.log"; exit 1; }
"$asan_dir/tests/test_obs" > "$tmp_dir/asan_obs.log" \
  || { echo "FAIL: asan test_obs"; tail -40 "$tmp_dir/asan_obs.log"; exit 1; }
echo "ok: asan clean"

echo "all checks passed"
