#!/usr/bin/env bash
# Tier-1 verification plus bench JSON schema checks:
#   1. configure + build + ctest (the tier-1 gate from ROADMAP.md);
#   2. run every --json bench in --fast mode;
#   3. compare the set of JSON keys each bench emits against the checked-in
#      schema in scripts/bench_schemas/<bench>.keys. A missing or renamed key
#      fails the run; a new key fails too, so schema growth is an explicit,
#      reviewed change (update the .keys file in the same commit);
#   4. trace determinism: two bench_serving --trace runs at different host
#      thread counts must produce bitwise-identical Chrome trace JSON (and
#      bitwise-identical metrics JSON), and the trace's key set must match
#      scripts/bench_schemas/trace_events.keys; the same run's metrics and
#      trace are then held byte-identical to the pre-ExecutionBackend
#      goldens in scripts/golden/, and bench_serving --backend auto
#      --require-crossover gates the cost-model placer (dense -> gpu,
#      butterfly/pixelfly -> ipu at n >= 1024, heterogeneous breakdown in
#      JSON and per-substrate chip tracks in the trace); bench_cluster
#      repeats the bitwise gate for its cluster metrics and trace, and
#      --require-efficiency 0.75 gates 4-chip scaling >= 3x;
#      bench_serving --require-stream-win 1.01 then gates the streaming
#      host-I/O claim: the double-buffered ingress must beat the host-copy
#      baseline on every method, with overlap visible in the trace;
#   5. executable artifact cache: cold-compile bench_serving / fig7 /
#      serve_demo into a --cache-dir, then rerun each in a fresh process that
#      must load every ipu::Executable from disk (0 compiles) and produce
#      byte-identical JSON/output;
#   6. specialized vs generic dispatch: bench JSON and (compile-span-filtered)
#      traces byte-identical with specialize_kernels on vs --no-specialize,
#      and bench_kernels --require-speedup 3 gates the throughput claim;
#   7. AddressSanitizer build of the concurrency-heavy tests (test_serve,
#      test_session, test_obs, test_kernels) in a side build dir.
#
# Usage: scripts/check.sh [build-dir]      (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
schema_dir="$repo_root/scripts/bench_schemas"

echo "== configure + build =="
cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j

echo "== tier-1 tests =="
ctest --test-dir "$build_dir" --output-on-failure -j

echo "== bench --json schemas =="
json_benches=(
  bench_fig3_exchange
  bench_fig4_skew
  bench_fig5_memusage
  bench_fig6_layers
  bench_fig7_computesets
  bench_table2_mm
  bench_table4_shl
  bench_table5_sweep
  bench_multi_ipu
  bench_serving
  bench_kernels
  bench_cluster
)
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT
failed=0
for bench in "${json_benches[@]}"; do
  out="$tmp_dir/$bench.json"
  "$build_dir/bench/$bench" --fast --json "$out" > "$tmp_dir/$bench.log"
  # The schema is the sorted set of distinct object keys in the output.
  grep -o '"[A-Za-z_][A-Za-z_0-9]*":' "$out" | sort -u > "$tmp_dir/$bench.keys"
  expected="$schema_dir/$bench.keys"
  if [[ ! -f "$expected" ]]; then
    echo "FAIL: $bench has no checked-in schema ($expected)"
    failed=1
  elif ! diff -u "$expected" "$tmp_dir/$bench.keys"; then
    echo "FAIL: $bench JSON keys changed (left: expected, right: actual)"
    failed=1
  else
    echo "ok: $bench"
  fi
done
if [[ "$failed" -ne 0 ]]; then
  echo "bench JSON schema check FAILED"
  exit 1
fi

echo "== trace determinism =="
# The tracer's contract: simulated-time timestamps only, so the trace bytes
# never depend on host parallelism (REPRO_THREADS or --host-threads). The
# streaming host-exchange spans ride the same contract, so the serving
# metrics JSON (which now carries overlapped_host_s) is held to byte
# identity across thread counts too.
t1="$tmp_dir/trace_t1.json"
t4="$tmp_dir/trace_t4.json"
j1="$tmp_dir/serving_json_t1.json"
j4="$tmp_dir/serving_json_t4.json"
REPRO_THREADS=1 "$build_dir/bench/bench_serving" --fast --requests 128 \
  --host-threads 1 --trace "$t1" --json "$j1" > "$tmp_dir/trace_t1.log"
REPRO_THREADS=4 "$build_dir/bench/bench_serving" --fast --requests 128 \
  --host-threads 4 --trace "$t4" --json "$j4" > "$tmp_dir/trace_t4.log"
if ! cmp -s "$t1" "$t4"; then
  echo "FAIL: trace JSON differs across host thread counts"
  exit 1
fi
if ! cmp -s "$j1" "$j4"; then
  echo "FAIL: serving metrics JSON differs across host thread counts"
  diff "$j1" "$j4" | head -10
  exit 1
fi
grep -o '"[A-Za-z_][A-Za-z_0-9]*":' "$t1" | sort -u > "$tmp_dir/trace.keys"
if ! diff -u "$schema_dir/trace_events.keys" "$tmp_dir/trace.keys"; then
  echo "FAIL: trace JSON keys changed (left: expected, right: actual)"
  exit 1
fi
echo "ok: trace + metrics bitwise-identical across host threads, schema stable"

echo "== IPU backend byte-identity vs pre-refactor goldens =="
# The ExecutionBackend refactor's observational contract: routing the IPU
# serving path through serve::IpuBackend must not change a byte of the
# metrics or trace JSON. The goldens were captured from the pre-refactor
# code with exactly the command of the t1 run above.
if ! cmp -s "$j1" "$repo_root/scripts/golden/bench_serving_ipu.json"; then
  echo "FAIL: bench_serving --json differs from the pre-refactor golden"
  diff "$j1" "$repo_root/scripts/golden/bench_serving_ipu.json" | head -10
  exit 1
fi
if ! cmp -s "$t1" "$repo_root/scripts/golden/bench_serving_ipu_trace.json"; then
  echo "FAIL: bench_serving --trace differs from the pre-refactor golden"
  exit 1
fi
echo "ok: IPU backend serving bytes identical to the pre-refactor goldens"

echo "== backend auto mode: cost-model crossover gate =="
# The placer must route dense to the GPU and butterfly/pixelfly to the IPU
# at n >= 1024 (the paper's Table 4 economics); --require-crossover makes
# the bench itself exit nonzero otherwise. The auto-mode record stream
# (placement decisions + heterogeneous router metrics) carries its own
# schema.
auto_json="$tmp_dir/serving_auto.json"
auto_trace="$tmp_dir/serving_auto_trace.json"
if ! REPRO_THREADS=1 "$build_dir/bench/bench_serving" --backend auto --fast \
    --requests 64 --require-crossover --json "$auto_json" \
    --trace "$auto_trace" > "$tmp_dir/serving_auto.log"; then
  echo "FAIL: --backend auto did not reproduce the IPU/GPU crossover"
  grep -E 'placer|crossover' "$tmp_dir/serving_auto.log" | tail -12
  exit 1
fi
grep 'crossover gate' "$tmp_dir/serving_auto.log" || true
grep -o '"[A-Za-z_][A-Za-z_0-9]*":' "$auto_json" | sort -u \
  > "$tmp_dir/serving_auto.keys"
if ! diff -u "$schema_dir/bench_serving_auto.keys" "$tmp_dir/serving_auto.keys"; then
  echo "FAIL: bench_serving --backend auto JSON keys changed"
  exit 1
fi
# The heterogeneous demo must have routed work to both substrates, visible
# in the per-backend metrics breakdown and as per-substrate chip tracks in
# the trace.
if ! grep -q '"backend": "ipu"' "$auto_json" \
    || ! grep -q '"backend": "gpu"' "$auto_json"; then
  echo "FAIL: auto-mode JSON lacks the per-backend breakdown rows"
  exit 1
fi
if ! grep -q 'chip 0 \[ipu\]' "$auto_trace" \
    || ! grep -q 'chip 1 \[gpu\]' "$auto_trace"; then
  echo "FAIL: auto-mode trace lacks the per-substrate chip tracks"
  exit 1
fi
echo "ok: dense -> gpu, butterfly/pixelfly -> ipu at n >= 1024; auto schema stable"

echo "== streaming host I/O: overlap + throughput gate =="
# bench_serving runs every method through both ingress paths off one
# capacity probe. --require-stream-win 1.01 makes the bench itself exit
# nonzero unless, for every method, the double-buffered streaming path
# sustains >= 1.01x the host-copy baseline's closed-loop QPS with real
# overlap recorded (overlapped_host_s > 0).
stream_log="$tmp_dir/stream_gate.log"
if ! "$build_dir/bench/bench_serving" --fast --require-stream-win 1.01 \
    > "$stream_log"; then
  echo "FAIL: streaming ingress did not clear 1.01x the copy baseline"
  grep -A 4 'Streaming ingress vs host copy' "$stream_log" || true
  exit 1
fi
grep -A 3 'Streaming ingress vs host copy' "$stream_log" || true
# Both ingress paths must be present in the JSON record stream.
if ! grep -q '"ingress": "stream"' "$tmp_dir/bench_serving.json" \
    || ! grep -q '"ingress": "copy"' "$tmp_dir/bench_serving.json"; then
  echo "FAIL: bench_serving JSON lacks stream/copy ingress records"
  exit 1
fi
# The trace must show the host-exchange lane doing work behind compute:
# stream spans with nonzero hidden time.
if ! grep -q '"name": "stream_in"' "$t1"; then
  echo "FAIL: trace has no stream_in host-exchange spans"
  exit 1
fi
if ! grep -o '"overlapped_s": [^,}]*' "$t1" \
    | grep -Evq ': 0(\.0+)?$'; then
  echo "FAIL: no stream span in the trace hides any link time"
  exit 1
fi
echo "ok: streaming beats copy >= 1.01x on every method, overlap visible in trace"

echo "== cluster fabric: thread-count byte-identity + scaling sanity =="
# The cluster DES shares the tracer contract: metrics JSON and trace bytes
# derive only from the single-threaded event loop, so REPRO_THREADS and
# --host-threads must not change a byte. The same run gates the scaling
# claim: butterfly QPS at 4 chips must reach >= 3x a single chip
# (--require-efficiency 0.75 makes the bench itself exit nonzero below it).
c1="$tmp_dir/cluster_t1.json"
c2="$tmp_dir/cluster_t2.json"
ct1="$tmp_dir/cluster_trace_t1.json"
ct2="$tmp_dir/cluster_trace_t2.json"
REPRO_THREADS=1 "$build_dir/bench/bench_cluster" --fast --host-threads 1 \
  --require-efficiency 0.75 --json "$c1" --trace "$ct1" \
  > "$tmp_dir/cluster_t1.log"
REPRO_THREADS=2 "$build_dir/bench/bench_cluster" --fast --host-threads 4 \
  --require-efficiency 0.75 --json "$c2" --trace "$ct2" \
  > "$tmp_dir/cluster_t2.log"
if ! cmp -s "$c1" "$c2"; then
  echo "FAIL: bench_cluster --json differs across host thread counts"
  diff "$c1" "$c2" | head -10
  exit 1
fi
if ! cmp -s "$ct1" "$ct2"; then
  echo "FAIL: bench_cluster trace differs across host thread counts"
  exit 1
fi
grep 'scaling efficiency' "$tmp_dir/cluster_t1.log" || true
echo "ok: cluster metrics/trace bitwise-identical; 4-chip scaling >= 3x"

echo "== executable artifact cache: cold vs warm byte-identity =="
# The cold run compiles every plan and saves each ipu::Executable into
# --cache-dir; the warm run is a FRESH PROCESS that must load every artifact
# from disk (0 compiles) and still emit byte-identical --json. This is the
# cross-process save/load gate for the serialized executable format.
cache_dir="$tmp_dir/exe_cache"
serving_cold="$tmp_dir/serving_cold.json"
serving_warm="$tmp_dir/serving_warm.json"
"$build_dir/bench/bench_serving" --fast --requests 128 \
  --cache-dir "$cache_dir" --json "$serving_cold" > "$tmp_dir/serving_cold.log"
"$build_dir/bench/bench_serving" --fast --requests 128 \
  --cache-dir "$cache_dir" --json "$serving_warm" > "$tmp_dir/serving_warm.log"
if ! cmp -s "$serving_cold" "$serving_warm"; then
  echo "FAIL: bench_serving --json differs when plans load from cached artifacts"
  diff "$serving_cold" "$serving_warm" | head -10
  exit 1
fi
if ! grep -Eq 'compile cache: .* [1-9][0-9]* disk hits, 0 compiles' \
    "$tmp_dir/serving_warm.log"; then
  echo "FAIL: warm bench_serving run did not load every executable from disk"
  grep 'compile cache' "$tmp_dir/serving_warm.log" || true
  exit 1
fi
fig7_cold="$tmp_dir/fig7_cold.json"
fig7_warm="$tmp_dir/fig7_warm.json"
"$build_dir/bench/bench_fig7_computesets" --fast \
  --cache-dir "$cache_dir" --json "$fig7_cold" > "$tmp_dir/fig7_cold.log"
"$build_dir/bench/bench_fig7_computesets" --fast \
  --cache-dir "$cache_dir" --json "$fig7_warm" > "$tmp_dir/fig7_warm.log"
if ! cmp -s "$fig7_cold" "$fig7_warm"; then
  echo "FAIL: fig7 ledger JSON differs when executables load from cached artifacts"
  diff "$fig7_cold" "$fig7_warm" | head -10
  exit 1
fi
if ! grep -Eq 'compile cache: .* [1-9][0-9]* disk hits, 0 compiles' \
    "$tmp_dir/fig7_warm.log"; then
  echo "FAIL: warm fig7 run did not load every executable from disk"
  grep 'compile cache' "$tmp_dir/fig7_warm.log" || true
  exit 1
fi
# serve_demo shares the same cache format: its second run must announce the
# plan came from a cached artifact, with the same calibrated batch time.
"$build_dir/examples/serve_demo" --requests 64 \
  --cache-dir "$cache_dir" > "$tmp_dir/demo_cold.log"
"$build_dir/examples/serve_demo" --requests 64 \
  --cache-dir "$cache_dir" > "$tmp_dir/demo_warm.log"
if ! grep -q '^loaded cached butterfly forward' "$tmp_dir/demo_warm.log"; then
  echo "FAIL: warm serve_demo did not load its plan from the artifact cache"
  head -3 "$tmp_dir/demo_warm.log"
  exit 1
fi
if ! cmp -s "$tmp_dir/demo_cold.log" <(sed 's/^loaded cached/compiled/' \
    "$tmp_dir/demo_warm.log"); then
  echo "FAIL: serve_demo output differs between compiled and cached plan"
  diff "$tmp_dir/demo_cold.log" "$tmp_dir/demo_warm.log" | head -10
  exit 1
fi
echo "ok: cold and warm runs byte-identical; warm runs served entirely from disk"

echo "== specialized vs generic dispatch: observational identity =="
# The specialize_kernels pass only changes host dispatch, never simulated
# results: --json output (reports, ledgers, serving percentiles) must be
# byte-identical with the pass on (default) and off (--no-specialize).
spec_on="$tmp_dir/serving_spec_on.json"
spec_off="$tmp_dir/serving_spec_off.json"
"$build_dir/bench/bench_serving" --fast --requests 128 \
  --json "$spec_on" > "$tmp_dir/spec_on.log"
"$build_dir/bench/bench_serving" --fast --requests 128 --no-specialize \
  --json "$spec_off" > "$tmp_dir/spec_off.log"
if ! cmp -s "$spec_on" "$spec_off"; then
  echo "FAIL: bench_serving --json differs between dispatch paths"
  diff "$spec_on" "$spec_off" | head -10
  exit 1
fi
fig7_spec_on="$tmp_dir/fig7_spec_on.json"
fig7_spec_off="$tmp_dir/fig7_spec_off.json"
"$build_dir/bench/bench_fig7_computesets" --fast \
  --json "$fig7_spec_on" > /dev/null
"$build_dir/bench/bench_fig7_computesets" --fast --no-specialize \
  --json "$fig7_spec_off" > /dev/null
if ! cmp -s "$fig7_spec_on" "$fig7_spec_off"; then
  echo "FAIL: fig7 ledger JSON differs between dispatch paths"
  diff "$fig7_spec_on" "$fig7_spec_off" | head -10
  exit 1
fi
# Trace cross-check. The off path legitimately lacks the specialize-kernels
# compile-pass span and its compile.passes increment; after dropping
# compile-category events and normalizing that counter, every remaining
# byte (the whole BSP timeline) must match.
ts_on="$tmp_dir/trace_spec_on.json"
ts_off="$tmp_dir/trace_spec_off.json"
REPRO_THREADS=1 "$build_dir/bench/bench_serving" --fast --requests 128 \
  --trace "$ts_on" > /dev/null
REPRO_THREADS=1 "$build_dir/bench/bench_serving" --fast --requests 128 \
  --no-specialize --trace "$ts_off" > /dev/null
norm_trace() {
  grep -v '"cat": "compile"' "$1" \
    | sed 's/"compile.passes": [0-9]*/"compile.passes": _/'
}
if ! cmp -s <(norm_trace "$ts_on") <(norm_trace "$ts_off"); then
  echo "FAIL: BSP trace differs between dispatch paths"
  diff <(norm_trace "$ts_on") <(norm_trace "$ts_off") | head -10
  exit 1
fi
# The throughput claim, machine-checked: with outputs already proven
# byte-identical, the specialized run path must clear 3x the generic
# path's host vertex throughput.
if ! REPRO_THREADS=1 "$build_dir/bench/bench_kernels" --fast --dispatch-only \
    --require-speedup 3 > "$tmp_dir/kernels_gate.log"; then
  echo "FAIL: specialized dispatch below 3x generic throughput"
  tail -5 "$tmp_dir/kernels_gate.log"
  exit 1
fi
grep 'speedup' "$tmp_dir/kernels_gate.log" || true
echo "ok: dispatch paths observationally identical; specialized >= 3x generic"

echo "== asan build (test_serve + test_session + test_obs + test_kernels + test_stream + test_executable) =="
asan_dir="$build_dir-asan"
cmake -B "$asan_dir" -S "$repo_root" -DREPRO_SANITIZE=address > /dev/null
cmake --build "$asan_dir" -j --target test_serve test_session test_obs \
  test_kernels test_stream test_executable
"$asan_dir/tests/test_serve" > "$tmp_dir/asan_serve.log" \
  || { echo "FAIL: asan test_serve"; tail -40 "$tmp_dir/asan_serve.log"; exit 1; }
"$asan_dir/tests/test_session" > "$tmp_dir/asan_session.log" \
  || { echo "FAIL: asan test_session"; tail -40 "$tmp_dir/asan_session.log"; exit 1; }
"$asan_dir/tests/test_obs" > "$tmp_dir/asan_obs.log" \
  || { echo "FAIL: asan test_obs"; tail -40 "$tmp_dir/asan_obs.log"; exit 1; }
"$asan_dir/tests/test_kernels" > "$tmp_dir/asan_kernels.log" \
  || { echo "FAIL: asan test_kernels"; tail -40 "$tmp_dir/asan_kernels.log"; exit 1; }
"$asan_dir/tests/test_stream" > "$tmp_dir/asan_stream.log" \
  || { echo "FAIL: asan test_stream"; tail -40 "$tmp_dir/asan_stream.log"; exit 1; }
"$asan_dir/tests/test_executable" > "$tmp_dir/asan_executable.log" \
  || { echo "FAIL: asan test_executable"; tail -40 "$tmp_dir/asan_executable.log"; exit 1; }
echo "ok: asan clean"

echo "all checks passed"
