#!/usr/bin/env bash
# Tier-1 verification plus bench JSON schema checks:
#   1. configure + build + ctest (the tier-1 gate from ROADMAP.md);
#   2. run every --json bench in --fast mode;
#   3. compare the set of JSON keys each bench emits against the checked-in
#      schema in scripts/bench_schemas/<bench>.keys. A missing or renamed key
#      fails the run; a new key fails too, so schema growth is an explicit,
#      reviewed change (update the .keys file in the same commit).
#
# Usage: scripts/check.sh [build-dir]      (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
schema_dir="$repo_root/scripts/bench_schemas"

echo "== configure + build =="
cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j

echo "== tier-1 tests =="
ctest --test-dir "$build_dir" --output-on-failure -j

echo "== bench --json schemas =="
json_benches=(
  bench_fig3_exchange
  bench_fig4_skew
  bench_fig5_memusage
  bench_fig6_layers
  bench_fig7_computesets
  bench_table2_mm
  bench_table4_shl
  bench_table5_sweep
  bench_multi_ipu
  bench_serving
)
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT
failed=0
for bench in "${json_benches[@]}"; do
  out="$tmp_dir/$bench.json"
  "$build_dir/bench/$bench" --fast --json "$out" > "$tmp_dir/$bench.log"
  # The schema is the sorted set of distinct object keys in the output.
  grep -o '"[A-Za-z_][A-Za-z_0-9]*":' "$out" | sort -u > "$tmp_dir/$bench.keys"
  expected="$schema_dir/$bench.keys"
  if [[ ! -f "$expected" ]]; then
    echo "FAIL: $bench has no checked-in schema ($expected)"
    failed=1
  elif ! diff -u "$expected" "$tmp_dir/$bench.keys"; then
    echo "FAIL: $bench JSON keys changed (left: expected, right: actual)"
    failed=1
  else
    echo "ok: $bench"
  fi
done
if [[ "$failed" -ne 0 ]]; then
  echo "bench JSON schema check FAILED"
  exit 1
fi
echo "all checks passed"
